#include "serve/scheduler.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace vitdyn
{

namespace
{

struct ServeCounters
{
    Counter &submitted;
    Counter &admitted;
    Counter &downgraded;
    Counter &rejected;
    Counter &expired;
    Counter &completed;
    Counter &rerouted;
    Counter &cancelled;
    std::array<Counter *, kServeClasses> classMisses;
    Histogram &queueWaitMs;
    Histogram &e2eMs;
    Histogram &batchSize;
};

ServeCounters &
serveCounters()
{
    MetricsRegistry &m = MetricsRegistry::instance();
    static ServeCounters c{
        m.counter("serve.submitted"),
        m.counter("serve.admitted"),
        m.counter("serve.downgraded"),
        m.counter("serve.rejected"),
        m.counter("serve.expired"),
        m.counter("serve.completed"),
        m.counter("serve.rerouted"),
        m.counter("serve.cancelled"),
        {&m.counter("serve.miss.critical"),
         &m.counter("serve.miss.interactive"),
         &m.counter("serve.miss.batch")},
        m.histogram("serve.queue_wait_ms"),
        m.histogram("serve.e2e_ms"),
        m.histogram("serve.batch_size",
                    {1, 2, 4, 8, 16, 32, 64, 128}),
    };
    return c;
}

double
elapsedMs(Deadline from, Deadline to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

} // namespace

ServeScheduler::ServeScheduler(DrtEngine &engine,
                               ServeSchedulerOptions options)
    : engine_(engine), options_(options),
      admission_(engine.lut(),
                 [&options] {
                     AdmissionOptions a = options.admission;
                     a.queueCapacity = options.queueCapacity;
                     return a;
                 }()),
      queue_(options.queueCapacity),
      costScale_(options.initialCostScale),
      quarantinedPaths_(engine.numQuarantined())
{
    vitdyn_assert(options_.maxBatch >= 1, "maxBatch must be >= 1");
    serveCounters(); // register metrics before any worker reports
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServeScheduler::~ServeScheduler()
{
    shutdown(true);
}

HealthSignals
ServeScheduler::gatherSignals(ServeClass cls) const
{
    HealthSignals s;
    s.queueDepth = queue_.depth();
    s.backlogCost = queue_.backlogCostAhead(cls);
    s.inflightCost = inflightCost_.load(std::memory_order_relaxed);
    ThreadPool &pool = ThreadPool::instance();
    s.poolQueueDepth = static_cast<double>(pool.queuedTasks());
    s.poolThreads = pool.threads();
    s.quarantinedPaths = static_cast<size_t>(
        quarantinedPaths_.load(std::memory_order_relaxed));
    s.totalPaths = engine_.numPaths(); // immutable after construction
    s.costScale = costScale_.load(std::memory_order_relaxed);
    return s;
}

void
ServeScheduler::deliver(QueuedRequest &request,
                        ServeResponse &&response)
{
    response.id = request.id;
    // The exactly-once terminal-outcome invariant lives here: every
    // QueuedRequest flows through exactly one of the expired /
    // dispatched / cancelled paths, each ending in this set_value.
    request.promise.set_value(std::move(response));
}

std::future<ServeResponse>
ServeScheduler::submit(ServeRequest request)
{
    ServeCounters &c = serveCounters();
    const uint64_t id =
        nextId_.fetch_add(1, std::memory_order_relaxed);
    const Deadline now = std::chrono::steady_clock::now();
    const size_t cls = static_cast<size_t>(request.priority);

    submitted_.fetch_add(1, std::memory_order_relaxed);
    c.submitted.add();
    if (deadlineSet(request.deadline))
        deadlineTotal_[cls].fetch_add(1, std::memory_order_relaxed);

    std::promise<ServeResponse> promise;
    std::future<ServeResponse> future = promise.get_future();

    const AdmissionDecision decision = admission_.decide(
        request.budget, request.priority, request.deadline, now,
        gatherSignals(request.priority));
    if (!decision.status) {
        ServeResponse response;
        response.id = id;
        response.status = decision.status;
        response.retryAfterMs = decision.retryAfterMs;
        rejected_.fetch_add(1, std::memory_order_relaxed);
        c.rejected.add();
        if (decision.status.code() == StatusCode::Quarantined)
            quarantineRejects_.fetch_add(1,
                                         std::memory_order_relaxed);
        if (deadlineSet(request.deadline)) {
            deadlineMisses_[cls].fetch_add(1,
                                           std::memory_order_relaxed);
            c.classMisses[cls]->add();
        }
        promise.set_value(std::move(response));
        return future;
    }

    QueuedRequest queued;
    queued.id = id;
    queued.image = std::move(request.image);
    queued.priority = request.priority;
    queued.deadline = request.deadline;
    queued.requestedBudget = request.budget;
    queued.admittedBudget = decision.effectiveBudget;
    queued.configIndex = decision.configIndex;
    queued.estimatedCost = decision.estimatedCost;
    queued.downgraded = decision.downgraded;
    queued.enqueued = now;
    queued.promise = std::move(promise);

    if (!queue_.push(std::move(queued))) {
        // Raced a fill-up or a shutdown between admission and push.
        ServeResponse response;
        response.id = id;
        if (queue_.closed()) {
            response.status = Status::error(
                StatusCode::Cancelled,
                "scheduler shut down before enqueue");
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            c.cancelled.add();
        } else {
            response.status = Status::error(StatusCode::Rejected,
                                            "serve queue at capacity");
            response.retryAfterMs = std::max(
                admission_.options().minRetryAfterMs,
                queue_.backlogCost() * costScale());
            rejected_.fetch_add(1, std::memory_order_relaxed);
            c.rejected.add();
            if (deadlineSet(request.deadline)) {
                deadlineMisses_[cls].fetch_add(
                    1, std::memory_order_relaxed);
                c.classMisses[cls]->add();
            }
        }
        queued.promise.set_value(std::move(response));
        return future;
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    c.admitted.add();
    if (decision.downgraded) {
        downgraded_.fetch_add(1, std::memory_order_relaxed);
        c.downgraded.add();
    }
    return future;
}

void
ServeScheduler::dispatchLoop()
{
    ServeCounters &c = serveCounters();
    while (std::optional<RequestQueue::Pop> popped =
               queue_.pop(options_.maxBatch)) {
        const Deadline dispatch_start =
            std::chrono::steady_clock::now();

        // Deadline-expired cancellation: typed Status, never run.
        for (QueuedRequest &request : popped->expired) {
            ServeResponse response;
            response.status = Status::error(
                StatusCode::DeadlineExceeded,
                "deadline expired while queued");
            response.downgraded = request.downgraded;
            response.queueMs = response.totalMs =
                elapsedMs(request.enqueued, dispatch_start);
            expired_.fetch_add(1, std::memory_order_relaxed);
            c.expired.add();
            const size_t cls =
                static_cast<size_t>(request.priority);
            deadlineMisses_[cls].fetch_add(1,
                                           std::memory_order_relaxed);
            c.classMisses[cls]->add();
            deliver(request, std::move(response));
        }
        if (popped->batch.empty())
            continue;

        std::vector<QueuedRequest> &batch = popped->batch;
        const LutEntry &admitted_entry =
            engine_.lut().entries()[batch.front().configIndex];

        double batch_cost = 0.0;
        std::vector<Tensor> images;
        std::vector<Deadline> deadlines;
        images.reserve(batch.size());
        deadlines.reserve(batch.size());
        bool any_deadline = false;
        for (QueuedRequest &request : batch) {
            batch_cost += request.estimatedCost;
            images.push_back(std::move(request.image));
            deadlines.push_back(request.deadline);
            any_deadline =
                any_deadline || deadlineSet(request.deadline);
        }
        if (!any_deadline)
            deadlines.clear();

        ScopedSpan span(Tracer::instance(), "serve.dispatch",
                        "serve");
        if (span.active()) {
            span.arg("batch", static_cast<uint64_t>(batch.size()));
            span.arg("config", admitted_entry.config.label);
        }
        c.batchSize.observe(static_cast<double>(batch.size()));

        // Forcing budget = admitted cost makes the engine's first
        // choice exactly the admitted config; quarantine reroutes
        // (and their bounded retries) happen inside the engine.
        inflightCost_.store(batch_cost, std::memory_order_relaxed);
        std::vector<Result<DrtResult>> results =
            engine_.tryInferBatch(images, admitted_entry.resourceCost,
                                  deadlines);
        inflightCost_.store(0.0, std::memory_order_relaxed);
        const Deadline dispatch_end =
            std::chrono::steady_clock::now();

        // Republish engine health + recalibrate the wall-per-cost
        // scale from what actually executed.
        quarantinedPaths_.store(engine_.numQuarantined(),
                                std::memory_order_relaxed);
        double executed_cost = 0.0;
        for (const Result<DrtResult> &result : results)
            if (result.isOk())
                executed_cost += result.value().resourceCost;
        if (executed_cost > 0.0) {
            const double sample =
                elapsedMs(dispatch_start, dispatch_end) /
                executed_cost;
            costScale_.store(0.8 * costScale() + 0.2 * sample,
                             std::memory_order_relaxed);
        }

        vitdyn_assert(results.size() == batch.size(),
                      "batch/result desync");
        for (size_t i = 0; i < batch.size(); ++i) {
            QueuedRequest &request = batch[i];
            const size_t cls =
                static_cast<size_t>(request.priority);
            ServeResponse response;
            response.downgraded = request.downgraded;
            response.batchSize = batch.size();
            response.queueMs =
                elapsedMs(request.enqueued, dispatch_start);
            response.totalMs =
                elapsedMs(request.enqueued, dispatch_end);
            c.queueWaitMs.observe(response.queueMs);
            c.e2eMs.observe(response.totalMs);

            bool missed_deadline = deadlineSet(request.deadline) &&
                                   dispatch_end > request.deadline;
            if (results[i].isOk()) {
                response.result = results[i].take();
                response.rerouted = response.result.degraded;
                completed_.fetch_add(1, std::memory_order_relaxed);
                c.completed.add();
                if (response.rerouted) {
                    rerouted_.fetch_add(1,
                                        std::memory_order_relaxed);
                    c.rerouted.add();
                }
            } else {
                response.status = results[i].status();
                missed_deadline = deadlineSet(request.deadline);
                if (response.status.code() ==
                    StatusCode::DeadlineExceeded) {
                    expired_.fetch_add(1, std::memory_order_relaxed);
                    c.expired.add();
                } else {
                    if (response.status.code() ==
                        StatusCode::Quarantined)
                        quarantineRejects_.fetch_add(
                            1, std::memory_order_relaxed);
                    rejected_.fetch_add(1, std::memory_order_relaxed);
                    c.rejected.add();
                }
            }
            if (missed_deadline) {
                deadlineMisses_[cls].fetch_add(
                    1, std::memory_order_relaxed);
                c.classMisses[cls]->add();
            }
            deliver(request, std::move(response));
        }
    }
}

void
ServeScheduler::shutdown(bool drain)
{
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true))
        return; // the first caller owns teardown
    ServeCounters &c = serveCounters();
    if (!drain) {
        // Grab pending work before closing so the dispatcher cannot
        // race us into running it.
        std::vector<QueuedRequest> leftovers = queue_.drain();
        queue_.close();
        for (QueuedRequest &request : leftovers) {
            ServeResponse response;
            response.status =
                Status::error(StatusCode::Cancelled,
                              "scheduler shut down before dispatch");
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            c.cancelled.add();
            deliver(request, std::move(response));
        }
    } else {
        queue_.close(); // pop() drains the remainder, then exits
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
}

ServeScheduler::Stats
ServeScheduler::stats() const
{
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.downgraded = downgraded_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rerouted = rerouted_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.quarantineRejects =
        quarantineRejects_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kServeClasses; ++i) {
        s.deadlineMisses[i] =
            deadlineMisses_[i].load(std::memory_order_relaxed);
        s.deadlineTotal[i] =
            deadlineTotal_[i].load(std::memory_order_relaxed);
    }
    return s;
}

} // namespace vitdyn
