#include "serve/scheduler.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace vitdyn
{

namespace
{

struct ServeCounters
{
    Counter &submitted;
    Counter &admitted;
    Counter &downgraded;
    Counter &rejected;
    Counter &expired;
    Counter &completed;
    Counter &rerouted;
    Counter &cancelled;
    /** Per-class SLO accounting: serve.<class>.deadline_miss /
     *  .downgrade counters and .latency_ms / .queue_ms histograms.
     *  The latency/queue observations carry the request id as an
     *  exemplar, so a tail bucket names a traceable request. */
    std::array<Counter *, kServeClasses> classMisses;
    std::array<Counter *, kServeClasses> classDowngrades;
    std::array<Histogram *, kServeClasses> classLatencyMs;
    std::array<Histogram *, kServeClasses> classQueueMs;
    Histogram &queueWaitMs;
    Histogram &e2eMs;
    Histogram &batchSize;
};

ServeCounters &
serveCounters()
{
    MetricsRegistry &m = MetricsRegistry::instance();
    static ServeCounters c{
        m.counter("serve.submitted"),
        m.counter("serve.admitted"),
        m.counter("serve.downgraded"),
        m.counter("serve.rejected"),
        m.counter("serve.expired"),
        m.counter("serve.completed"),
        m.counter("serve.rerouted"),
        m.counter("serve.cancelled"),
        {&m.counter("serve.critical.deadline_miss"),
         &m.counter("serve.interactive.deadline_miss"),
         &m.counter("serve.batch.deadline_miss")},
        {&m.counter("serve.critical.downgrade"),
         &m.counter("serve.interactive.downgrade"),
         &m.counter("serve.batch.downgrade")},
        {&m.histogram("serve.critical.latency_ms"),
         &m.histogram("serve.interactive.latency_ms"),
         &m.histogram("serve.batch.latency_ms")},
        {&m.histogram("serve.critical.queue_ms"),
         &m.histogram("serve.interactive.queue_ms"),
         &m.histogram("serve.batch.queue_ms")},
        m.histogram("serve.queue_wait_ms"),
        m.histogram("serve.e2e_ms"),
        m.histogram("serve.batch_size",
                    {1, 2, 4, 8, 16, 32, 64, 128}),
    };
    return c;
}

/**
 * Terminal per-request summary marker: one instant event tagged with
 * the request id carrying the whole latency decomposition, so a
 * flight dump (which keeps the request's span chain) and tracetool
 * both see the scheduler's own accounting next to the raw spans.
 */
void
recordRequestSummary(uint64_t id, ServeClass cls,
                     const LatencyBreakdown &b,
                     const std::string &config,
                     const char *outcome)
{
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled())
        return;
    SpanEvent ev;
    ev.name = "serve.request";
    ev.category = "serve";
    ev.instant = true;
    ev.startNs = tracer.now();
    ev.requestId = id;
    auto num = [&ev](const char *key, double v) {
        ev.args.push_back(SpanArg{key, std::to_string(v), true});
    };
    ev.args.push_back(SpanArg{"class", serveClassName(cls), false});
    ev.args.push_back(SpanArg{"outcome", outcome, false});
    if (!config.empty())
        ev.args.push_back(SpanArg{"config", config, false});
    num("admission_ms", b.admissionMs);
    num("queue_ms", b.queueMs);
    num("batch_ms", b.batchAssemblyMs);
    num("engine_ms", b.engineMs);
    num("kernel_ms", b.kernelMs);
    num("pool_wait_ms", b.poolWaitMs);
    ev.args.push_back(SpanArg{
        "deadline_miss", b.deadlineMiss ? "true" : "false", true});
    ev.args.push_back(SpanArg{
        "downgraded", b.downgraded ? "true" : "false", true});
    ev.args.push_back(
        SpanArg{"rerouted", b.rerouted ? "true" : "false", true});
    tracer.record(std::move(ev));
}

double
elapsedMs(Deadline from, Deadline to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

} // namespace

ServeScheduler::ServeScheduler(DrtEngine &engine,
                               ServeSchedulerOptions options)
    : engine_(engine), options_(options),
      admission_(engine.lut(),
                 [&options] {
                     AdmissionOptions a = options.admission;
                     a.queueCapacity = options.queueCapacity;
                     return a;
                 }(),
                 // Certified static peak bounds from the engine's
                 // load-time liveness analysis: the memory-aware
                 // admission policy never guesses.
                 engine.certifiedPeakBytes()),
      queue_(options.queueCapacity),
      costScale_(options.initialCostScale),
      quarantinedPaths_(engine.numQuarantined())
{
    vitdyn_assert(options_.maxBatch >= 1, "maxBatch must be >= 1");
    serveCounters(); // register metrics before any worker reports
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServeScheduler::~ServeScheduler()
{
    shutdown(true);
}

HealthSignals
ServeScheduler::gatherSignals(ServeClass cls) const
{
    HealthSignals s;
    s.queueDepth = queue_.depth();
    s.backlogCost = queue_.backlogCostAhead(cls);
    s.inflightCost = inflightCost_.load(std::memory_order_relaxed);
    s.inflightPeakBytes =
        inflightPeakBytes_.load(std::memory_order_relaxed);
    ThreadPool &pool = ThreadPool::instance();
    s.poolQueueDepth = static_cast<double>(pool.queuedTasks());
    s.poolThreads = pool.threads();
    s.quarantinedPaths = static_cast<size_t>(
        quarantinedPaths_.load(std::memory_order_relaxed));
    s.totalPaths = engine_.numPaths(); // immutable after construction
    s.costScale = costScale_.load(std::memory_order_relaxed);
    return s;
}

void
ServeScheduler::deliver(QueuedRequest &request,
                        ServeResponse &&response)
{
    response.id = request.id;
    // The exactly-once terminal-outcome invariant lives here: every
    // QueuedRequest flows through exactly one of the expired /
    // dispatched / cancelled paths, each ending in this set_value.
    request.promise.set_value(std::move(response));
}

std::future<ServeResponse>
ServeScheduler::submit(ServeRequest request)
{
    ServeCounters &c = serveCounters();
    const uint64_t id =
        nextId_.fetch_add(1, std::memory_order_relaxed);
    const Deadline now = std::chrono::steady_clock::now();
    const size_t cls = static_cast<size_t>(request.priority);

    submitted_.fetch_add(1, std::memory_order_relaxed);
    c.submitted.add();
    if (deadlineSet(request.deadline))
        deadlineTotal_[cls].fetch_add(1, std::memory_order_relaxed);

    std::promise<ServeResponse> promise;
    std::future<ServeResponse> future = promise.get_future();

    const AdmissionDecision decision = admission_.decide(
        request.budget, request.priority, request.deadline, now,
        gatherSignals(request.priority));
    const double admission_ms =
        elapsedMs(now, std::chrono::steady_clock::now());
    if (!decision.status) {
        ServeResponse response;
        response.id = id;
        response.status = decision.status;
        response.retryAfterMs = decision.retryAfterMs;
        response.breakdown.admissionMs = admission_ms;
        rejected_.fetch_add(1, std::memory_order_relaxed);
        c.rejected.add();
        if (decision.status.code() == StatusCode::Quarantined)
            quarantineRejects_.fetch_add(1,
                                         std::memory_order_relaxed);
        if (deadlineSet(request.deadline)) {
            deadlineMisses_[cls].fetch_add(1,
                                           std::memory_order_relaxed);
            c.classMisses[cls]->add();
        }
        promise.set_value(std::move(response));
        return future;
    }

    QueuedRequest queued;
    queued.id = id;
    queued.image = std::move(request.image);
    queued.priority = request.priority;
    queued.deadline = request.deadline;
    queued.requestedBudget = request.budget;
    queued.admittedBudget = decision.effectiveBudget;
    queued.configIndex = decision.configIndex;
    queued.estimatedCost = decision.estimatedCost;
    queued.downgraded = decision.downgraded;
    queued.enqueued = now;
    queued.context = std::make_unique<RequestContext>(
        id, static_cast<int>(request.priority));
    queued.context->admissionMs = admission_ms;
    queued.context->setConfigLabel(
        engine_.lut().entries()[decision.configIndex].config.label);
    queued.promise = std::move(promise);

    if (!queue_.push(std::move(queued))) {
        // Raced a fill-up or a shutdown between admission and push.
        ServeResponse response;
        response.id = id;
        if (queue_.closed()) {
            response.status = Status::error(
                StatusCode::Cancelled,
                "scheduler shut down before enqueue");
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            c.cancelled.add();
        } else {
            response.status = Status::error(StatusCode::Rejected,
                                            "serve queue at capacity");
            response.retryAfterMs = std::max(
                admission_.options().minRetryAfterMs,
                queue_.backlogCost() * costScale());
            rejected_.fetch_add(1, std::memory_order_relaxed);
            c.rejected.add();
            if (deadlineSet(request.deadline)) {
                deadlineMisses_[cls].fetch_add(
                    1, std::memory_order_relaxed);
                c.classMisses[cls]->add();
            }
        }
        queued.promise.set_value(std::move(response));
        return future;
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    c.admitted.add();
    if (decision.downgraded) {
        downgraded_.fetch_add(1, std::memory_order_relaxed);
        c.downgraded.add();
        c.classDowngrades[cls]->add();
    }
    return future;
}

void
ServeScheduler::dispatchLoop()
{
    ServeCounters &c = serveCounters();
    while (std::optional<RequestQueue::Pop> popped =
               queue_.pop(options_.maxBatch)) {
        const Deadline dispatch_start =
            std::chrono::steady_clock::now();

        // Deadline-expired cancellation: typed Status, never run.
        for (QueuedRequest &request : popped->expired) {
            ServeResponse response;
            response.status = Status::error(
                StatusCode::DeadlineExceeded,
                "deadline expired while queued");
            response.downgraded = request.downgraded;
            response.queueMs = response.totalMs =
                elapsedMs(request.enqueued, dispatch_start);
            expired_.fetch_add(1, std::memory_order_relaxed);
            c.expired.add();
            const size_t cls =
                static_cast<size_t>(request.priority);
            deadlineMisses_[cls].fetch_add(1,
                                           std::memory_order_relaxed);
            c.classMisses[cls]->add();
            if (request.context) {
                request.context->queueMs = response.queueMs;
                response.breakdown =
                    request.context->finishBreakdown();
            } else {
                response.breakdown.queueMs = response.queueMs;
            }
            response.breakdown.downgraded = request.downgraded;
            response.breakdown.deadlineMiss = true;
            c.classLatencyMs[cls]->observe(response.totalMs,
                                           request.id);
            c.classQueueMs[cls]->observe(response.queueMs,
                                         request.id);
            recordRequestSummary(request.id, request.priority,
                                 response.breakdown,
                                 request.context
                                     ? request.context->configLabel()
                                     : std::string(),
                                 "expired");
            FlightRecorder::instance().trigger(
                FlightTrigger::DeadlineMiss, request.id,
                "deadline expired while queued (" +
                    std::string(serveClassName(request.priority)) +
                    ", waited " +
                    std::to_string(response.queueMs) + " ms)");
            deliver(request, std::move(response));
        }
        if (popped->batch.empty())
            continue;

        std::vector<QueuedRequest> &batch = popped->batch;
        const LutEntry &admitted_entry =
            engine_.lut().entries()[batch.front().configIndex];

        double batch_cost = 0.0;
        std::vector<Tensor> images;
        std::vector<Deadline> deadlines;
        std::vector<RequestContext *> contexts;
        images.reserve(batch.size());
        deadlines.reserve(batch.size());
        contexts.reserve(batch.size());
        bool any_deadline = false;
        for (QueuedRequest &request : batch) {
            batch_cost += request.estimatedCost;
            images.push_back(std::move(request.image));
            deadlines.push_back(request.deadline);
            contexts.push_back(request.context.get());
            any_deadline =
                any_deadline || deadlineSet(request.deadline);
        }
        if (!any_deadline)
            deadlines.clear();

        ScopedSpan span(Tracer::instance(), "serve.dispatch",
                        "serve");
        if (span.active()) {
            span.arg("batch", static_cast<uint64_t>(batch.size()));
            span.arg("config", admitted_entry.config.label);
        }
        c.batchSize.observe(static_cast<double>(batch.size()));

        // Forcing budget = admitted cost makes the engine's first
        // choice exactly the admitted config; quarantine reroutes
        // (and their bounded retries) happen inside the engine.
        const Deadline engine_entry =
            std::chrono::steady_clock::now();
        const double batch_assembly_ms =
            elapsedMs(dispatch_start, engine_entry);
        inflightCost_.store(batch_cost, std::memory_order_relaxed);
        inflightPeakBytes_.store(
            engine_.certifiedPeakBytes(batch.front().configIndex),
            std::memory_order_relaxed);
        std::vector<Result<DrtResult>> results =
            engine_.tryInferBatch(images, admitted_entry.resourceCost,
                                  deadlines, contexts);
        inflightCost_.store(0.0, std::memory_order_relaxed);
        inflightPeakBytes_.store(0, std::memory_order_relaxed);
        const Deadline dispatch_end =
            std::chrono::steady_clock::now();

        // Republish engine health + recalibrate the wall-per-cost
        // scale from what actually executed.
        quarantinedPaths_.store(engine_.numQuarantined(),
                                std::memory_order_relaxed);
        double executed_cost = 0.0;
        for (const Result<DrtResult> &result : results)
            if (result.isOk())
                executed_cost += result.value().resourceCost;
        if (executed_cost > 0.0) {
            const double sample =
                elapsedMs(dispatch_start, dispatch_end) /
                executed_cost;
            costScale_.store(0.8 * costScale() + 0.2 * sample,
                             std::memory_order_relaxed);
        }

        vitdyn_assert(results.size() == batch.size(),
                      "batch/result desync");
        for (size_t i = 0; i < batch.size(); ++i) {
            QueuedRequest &request = batch[i];
            const size_t cls =
                static_cast<size_t>(request.priority);
            ServeResponse response;
            response.downgraded = request.downgraded;
            response.batchSize = batch.size();
            response.queueMs =
                elapsedMs(request.enqueued, dispatch_start);
            response.totalMs =
                elapsedMs(request.enqueued, dispatch_end);
            c.queueWaitMs.observe(response.queueMs);
            c.e2eMs.observe(response.totalMs);

            bool missed_deadline = deadlineSet(request.deadline) &&
                                   dispatch_end > request.deadline;
            if (results[i].isOk()) {
                response.result = results[i].take();
                response.rerouted = response.result.degraded;
                completed_.fetch_add(1, std::memory_order_relaxed);
                c.completed.add();
                if (response.rerouted) {
                    rerouted_.fetch_add(1,
                                        std::memory_order_relaxed);
                    c.rerouted.add();
                }
            } else {
                response.status = results[i].status();
                missed_deadline = deadlineSet(request.deadline);
                if (response.status.code() ==
                    StatusCode::DeadlineExceeded) {
                    expired_.fetch_add(1, std::memory_order_relaxed);
                    c.expired.add();
                } else {
                    if (response.status.code() ==
                        StatusCode::Quarantined)
                        quarantineRejects_.fetch_add(
                            1, std::memory_order_relaxed);
                    rejected_.fetch_add(1, std::memory_order_relaxed);
                    c.rejected.add();
                }
            }
            if (missed_deadline) {
                deadlineMisses_[cls].fetch_add(
                    1, std::memory_order_relaxed);
                c.classMisses[cls]->add();
            }

            // Terminal observability: snapshot the context's
            // accumulators (engine/kernel/pool attribution written
            // during execution) into the response, report the
            // per-class SLO metrics with the request id as exemplar,
            // and fire the flight recorder on anomalies.
            if (request.context) {
                request.context->queueMs = response.queueMs;
                request.context->batchAssemblyMs = batch_assembly_ms;
                response.breakdown =
                    request.context->finishBreakdown();
            } else {
                response.breakdown.queueMs = response.queueMs;
                response.breakdown.batchAssemblyMs =
                    batch_assembly_ms;
            }
            response.breakdown.downgraded = response.downgraded;
            response.breakdown.rerouted = response.rerouted;
            response.breakdown.deadlineMiss = missed_deadline;
            c.classLatencyMs[cls]->observe(response.totalMs,
                                           request.id);
            c.classQueueMs[cls]->observe(response.queueMs,
                                         request.id);
            const std::string config_label =
                response.status.isOk()
                    ? response.result.configLabel
                    : (request.context
                           ? request.context->configLabel()
                           : std::string());
            recordRequestSummary(
                request.id, request.priority, response.breakdown,
                config_label,
                response.status.isOk()
                    ? "ok"
                    : statusCodeName(response.status.code()));
            FlightRecorder &recorder = FlightRecorder::instance();
            if (missed_deadline)
                recorder.trigger(
                    FlightTrigger::DeadlineMiss, request.id,
                    "request completed " +
                        std::to_string(response.totalMs) +
                        " ms after submit, past its deadline (" +
                        serveClassName(request.priority) +
                        ", dominant stage " +
                        response.breakdown.dominantStage() + ")");
            if (response.rerouted)
                recorder.trigger(
                    FlightTrigger::QuarantineReroute, request.id,
                    "quarantine moved the request off config '" +
                        admitted_entry.config.label + "' to '" +
                        config_label + "'");
            deliver(request, std::move(response));
        }
    }
}

void
ServeScheduler::shutdown(bool drain)
{
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true))
        return; // the first caller owns teardown
    ServeCounters &c = serveCounters();
    if (!drain) {
        // Grab pending work before closing so the dispatcher cannot
        // race us into running it.
        std::vector<QueuedRequest> leftovers = queue_.drain();
        queue_.close();
        for (QueuedRequest &request : leftovers) {
            ServeResponse response;
            response.status =
                Status::error(StatusCode::Cancelled,
                              "scheduler shut down before dispatch");
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            c.cancelled.add();
            deliver(request, std::move(response));
        }
    } else {
        queue_.close(); // pop() drains the remainder, then exits
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
}

ServeScheduler::Stats
ServeScheduler::stats() const
{
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.downgraded = downgraded_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rerouted = rerouted_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.quarantineRejects =
        quarantineRejects_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kServeClasses; ++i) {
        s.deadlineMisses[i] =
            deadlineMisses_[i].load(std::memory_order_relaxed);
        s.deadlineTotal[i] =
            deadlineTotal_[i].load(std::memory_order_relaxed);
    }
    return s;
}

} // namespace vitdyn
