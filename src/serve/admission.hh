/**
 * @file
 * Admission control with graceful degradation along the LUT frontier.
 *
 * The controller is a pure decision function over a snapshot of live
 * health signals (serve queue depth/backlog, kernel-pool saturation,
 * engine quarantine counts) — no locks, no engine access — so the
 * submit path stays cheap and the policy is unit-testable in
 * isolation. Policy, in order:
 *
 *  1. hard backpressure: queue at capacity, or every execution path
 *     quarantined → typed rejection with a retry-after hint;
 *  2. graceful degradation: scale the requested budget down by the
 *     measured congestion pressure (weighted per priority class:
 *     Batch bends first, Critical last) and by what the deadline can
 *     still afford after the predicted queue wait — then walk the
 *     LUT frontier to the best config that fits;
 *  3. deadline feasibility: when even the cheapest config cannot
 *     finish before the deadline, reject now (StatusCode::Rejected,
 *     retry-after ≈ backlog drain time) instead of wasting queue
 *     space on a guaranteed miss;
 *  4. memory feasibility: with an activation-memory budget set, only
 *     configs whose *certified* static peak bound (the engine's
 *     load-time liveness analysis, not a guess) fits what in-flight
 *     work leaves free are eligible — memory pressure degrades to a
 *     smaller config first and rejects with retry-after when nothing
 *     fits.
 *
 * LUT costs are in the LUT's native (modeled) unit; `costScale`
 * converts them to wall milliseconds and is calibrated online by the
 * scheduler from actual dispatch times.
 */

#ifndef VITDYN_SERVE_ADMISSION_HH
#define VITDYN_SERVE_ADMISSION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "engine/lut.hh"
#include "serve/serve.hh"
#include "util/deadline.hh"
#include "util/status.hh"

namespace vitdyn
{

/** Point-in-time health snapshot the decision is made against. */
struct HealthSignals
{
    size_t queueDepth = 0;      ///< Serve queue occupancy.
    double backlogCost = 0.0;   ///< Queued work, LUT cost units.
    double inflightCost = 0.0;  ///< Work executing right now.
    double poolQueueDepth = 0.0;///< Kernel-pool shards waiting.
    int poolThreads = 1;        ///< Kernel-pool concurrency.
    size_t quarantinedPaths = 0;///< Vetoed + probation paths.
    size_t totalPaths = 1;      ///< LUT configs overall.
    double costScale = 1.0;     ///< Wall ms per LUT cost unit (EWMA).
    /** Certified peak bytes of the work executing right now (the
     *  dispatched config's static bound; 0 = idle). */
    size_t inflightPeakBytes = 0;
};

/** Tuning knobs; the defaults serve the soak bench well. */
struct AdmissionOptions
{
    /** Hard queue cap; at or above it every submit is rejected. */
    size_t queueCapacity = 4096;

    /** Congestion weights (dimensionless pressures, see decide()). */
    double queuePressureWeight = 2.0;
    double poolPressureWeight = 0.5;
    double quarantinePressureWeight = 1.0;

    /** Per-class multiplier on congestion pressure: Batch degrades
     *  first, Critical holds its budget the longest. */
    std::array<double, kServeClasses> classPressure = {0.25, 1.0, 2.0};

    /** Margin on predicted cost when checking deadline feasibility
     *  (>1 leaves headroom for estimation error). */
    double deadlineSafety = 1.2;

    /** Floor for the retry-after backpressure hint. */
    double minRetryAfterMs = 1.0;

    /**
     * Activation-memory budget for admitted work, in bytes. When > 0
     * (and the controller was built with per-config certified peak
     * bounds), a config is only eligible while its bound fits
     * `memoryBudgetBytes - signals.inflightPeakBytes`. 0 disables
     * the memory policy.
     */
    size_t memoryBudgetBytes = 0;
};

/** What admission decided for one request. */
struct AdmissionDecision
{
    /** OK = admitted (possibly downgraded); otherwise the typed
     *  rejection to hand straight back to the tenant. */
    Status status;

    size_t configIndex = 0;     ///< Admitted LUT config.
    double effectiveBudget = 0; ///< Budget after degradation.
    double estimatedCost = 0;   ///< LUT cost of the admitted config.

    /** The congestion/deadline scaling bought a cheaper config than
     *  the requested budget would have on an idle system. */
    bool downgraded = false;

    double retryAfterMs = 0.0;  ///< Hint accompanying a rejection.
};

/** Pure admission policy over one LUT; see file comment. */
class AdmissionController
{
  public:
    /**
     * @p lut must outlive the controller (the engine's LUT does).
     * @p config_peak_bytes — certified peak-activation bounds
     * parallel to lut.entries() (DrtEngine::certifiedPeakBytes());
     * empty disables the memory policy, a 0 entry means "unknown,
     * always fits" (lint gate disabled for that config).
     */
    explicit AdmissionController(
        const AccuracyResourceLut &lut, AdmissionOptions options = {},
        std::vector<size_t> config_peak_bytes = {});

    /**
     * Decide admission for a request of @p cls with @p
     * requested_budget and optional @p deadline, given @p signals
     * sampled at @p now. Thread-safe (const, no state).
     */
    AdmissionDecision decide(double requested_budget, ServeClass cls,
                             Deadline deadline, Deadline now,
                             const HealthSignals &signals) const;

    const AdmissionOptions &options() const { return options_; }

  private:
    /**
     * Index of the best memory-eligible frontier entry affordable at
     * @p budget (DrtEngine::lookupIndex semantics: the cheapest
     * eligible entry is the floor). @p memory_available caps the
     * certified peak bound; entries().size() is returned when no
     * entry fits it at all.
     */
    size_t indexForBudget(double budget, size_t memory_available,
                          bool *met) const;

    /** Does config @p index's certified bound fit @p available? */
    bool memoryFits(size_t index, size_t available) const;

    const AccuracyResourceLut &lut_;
    AdmissionOptions options_;
    /** Certified bounds parallel to lut_.entries(); may be empty. */
    std::vector<size_t> configPeakBytes_;
};

} // namespace vitdyn

#endif // VITDYN_SERVE_ADMISSION_HH
