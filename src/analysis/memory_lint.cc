#include "analysis/memory_lint.hh"

#include <string>

namespace vitdyn
{
namespace analysis
{

namespace
{

/** Mirrors the executor's in-place kernel coverage. */
bool
supportsInPlace(LayerKind kind)
{
    switch (kind) {
    case LayerKind::ReLU:
    case LayerKind::GELU:
    case LayerKind::Add:
    case LayerKind::BatchNorm:
        return true;
    default:
        return false;
    }
}

/**
 * A forwarder logically hands its first input's buffer through
 * unchanged: explicit Identity layers and bypassed layers. Narrow and
 * Concat are deliberately *not* forwarders — in this IR they
 * materialize fresh buffers (the executor copies), so they consume
 * the source buffer rather than aliasing it.
 */
bool
isForwarder(const Layer &layer)
{
    return (layer.kind == LayerKind::Identity || layer.bypassed) &&
           !layer.inputs.empty();
}

std::string
shapeText(const Shape &shape)
{
    std::string text = "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i > 0)
            text += ", ";
        text += std::to_string(shape[i]);
    }
    return text + "]";
}

} // namespace

std::vector<int>
verifiedStealTargets(const Graph &graph, LintReport *report)
{
    const int n = static_cast<int>(graph.numLayers());
    std::vector<int> targets(n, -1);
    if (n == 0)
        return targets;

    std::vector<char> is_output(n, 0);
    for (int out_id : graph.outputs())
        if (out_id >= 0 && out_id < n)
            is_output[out_id] = 1;

    // Resolve every layer's buffer root through forwarder chains. A
    // bounded chase (not memoized recursion) so malformed graphs with
    // self/forward references degrade to identity instead of looping.
    std::vector<int> root(n);
    for (int i = 0; i < n; ++i) {
        int r = i;
        for (int steps = 0; steps <= n; ++steps) {
            if (r < 0 || r >= n || !isForwarder(graph.layer(r)))
                break;
            const int next = graph.layer(r).inputs[0];
            if (next < 0 || next >= n || next == r)
                break;
            r = next;
        }
        root[i] = r;
    }

    for (int i = 0; i < n; ++i) {
        const Layer &layer = graph.layer(i);
        if (layer.inplacePriority <= 0)
            continue;
        bool sound = true;
        auto fail = [&](Severity severity, const char *check,
                        std::string message) {
            if (severity == Severity::Error)
                sound = false;
            if (report)
                report->add(severity, check, i, layer.name,
                            std::move(message));
        };

        if (layer.bypassed) {
            fail(Severity::Warning, "mem.inplace.bypassed",
                 "in-place annotation on a bypassed layer is dead "
                 "(the executor never steals for bypassed layers)");
            continue;
        }
        if (!supportsInPlace(layer.kind))
            fail(Severity::Error, "mem.inplace.kind",
                 std::string("kind ") + layerKindName(layer.kind) +
                     " has no in-place kernel");
        if (layer.inputs.empty()) {
            fail(Severity::Error, "mem.inplace.no-input",
                 "annotated layer has no input buffer to steal");
            continue;
        }
        const int in0 = layer.inputs[0];
        if (in0 < 0 || in0 >= n || in0 >= i) {
            // Dangling / forward references are the structure
            // family's findings; the steal is just not provable.
            targets[i] = -1;
            continue;
        }
        const Layer &src = graph.layer(in0);
        if (src.outShape != layer.outShape)
            fail(Severity::Error, "mem.inplace.shape",
                 "stolen buffer '" + src.name + "' shape " +
                     shapeText(src.outShape) +
                     " != output shape " + shapeText(layer.outShape));
        if (is_output[in0])
            fail(Severity::Error, "mem.inplace.output",
                 "stolen buffer '" + src.name +
                     "' is a graph output the caller reads");

        // Alias analysis on the actually-stolen root buffer: any read
        // of it scheduled strictly after this layer, or any graph
        // output aliasing it, makes the steal a corruption under
        // zero-copy forwarding.
        const int stolen_root = root[in0];
        for (int alias = 0; alias < n; ++alias) {
            if (root[alias] != stolen_root || alias == in0)
                continue;
            if (is_output[alias])
                fail(Severity::Error, "mem.inplace.alias",
                     "graph output '" + graph.layer(alias).name +
                         "' aliases the stolen buffer '" + src.name +
                         "' through forwarders");
        }
        for (int reader = i + 1; reader < n; ++reader) {
            for (int edge : graph.layer(reader).inputs) {
                if (edge < 0 || edge >= n || root[edge] != stolen_root)
                    continue;
                if (edge == in0)
                    fail(Severity::Error, "mem.inplace.not-last",
                         "'" + graph.layer(reader).name +
                             "' still reads the stolen buffer '" +
                             src.name + "' after this layer");
                else
                    fail(Severity::Error, "mem.inplace.alias",
                         "'" + graph.layer(reader).name +
                             "' reads the stolen buffer '" + src.name +
                             "' through forwarder alias '" +
                             graph.layer(edge).name + "'");
                break; // one finding per reader is enough
            }
        }

        if (sound)
            targets[i] = in0;
    }
    return targets;
}

void
checkMemory(const Graph &graph, LintReport &report)
{
    verifiedStealTargets(graph, &report);
}

} // namespace analysis
} // namespace vitdyn
