#include "analysis/lut_check.hh"

#include <cmath>
#include <sstream>

#include "analysis/liveness.hh"

namespace vitdyn
{

namespace
{

std::string
rowLabel(const LutEntry &entry, size_t index)
{
    std::ostringstream oss;
    oss << "row " << index << " ('" << entry.config.label << "')";
    return oss.str();
}

} // namespace

LintReport
checkLut(const AccuracyResourceLut &lut, ModelFamily family,
         const SegformerConfig &seg_base, const SwinConfig &swin_base,
         const LutCheckOptions &options)
{
    LintReport report;
    const std::vector<LutEntry> &entries = lut.entries();

    if (entries.empty()) {
        report.addGraph(Severity::Error, "lut.empty",
                        "LUT has no entries");
        return report;
    }

    // Baseline FLOPs for the normalized-cost drift check.
    Graph full = family == ModelFamily::Segformer
                     ? buildSegformer(seg_base)
                     : buildSwin(swin_base);
    const double full_flops = static_cast<double>(full.totalFlops());

    for (size_t i = 0; i < entries.size(); ++i) {
        const LutEntry &entry = entries[i];
        const std::string row = rowLabel(entry, i);

        if (entry.config.label.empty())
            report.addGraph(Severity::Error, "lut.label",
                            "row " + std::to_string(i) +
                                " has an empty config label");
        if (!std::isfinite(entry.resourceCost) ||
            entry.resourceCost <= 0.0)
            report.addGraph(Severity::Error, "lut.cost",
                            row + " has invalid resource cost " +
                                std::to_string(entry.resourceCost));
        if (!std::isfinite(entry.normalizedCost) ||
            entry.normalizedCost <= 0.0)
            report.addGraph(Severity::Error, "lut.normalized-cost",
                            row + " has invalid normalized cost " +
                                std::to_string(entry.normalizedCost));
        if (!std::isfinite(entry.accuracyEstimate) ||
            entry.accuracyEstimate < 0.0 ||
            entry.accuracyEstimate > 1.5)
            report.addGraph(Severity::Warning, "lut.accuracy",
                            row + " accuracy estimate " +
                                std::to_string(entry.accuracyEstimate) +
                                " outside [0, 1.5]");
        if (i > 0 && entries[i - 1].resourceCost > entry.resourceCost)
            report.addGraph(Severity::Error, "lut.order",
                            row + " breaks the ascending cost order");

        // Rebuild the row's graph; an infeasible config means the LUT
        // no longer matches the builder/prune code it was swept from.
        Result<Graph> built =
            tryApplyPrune(family, seg_base, swin_base, entry.config);
        if (!built) {
            report.addGraph(Severity::Error, "lut.config",
                            row + ": " + built.status().message());
            continue;
        }
        const Graph &graph = built.value();

        report.mergeWithContext(lintGraph(graph, options.lint), row);

        if (options.memoryBudgetBytes > 0) {
            const size_t peak = analysis::certifiedPeakBytes(graph);
            if (peak > options.memoryBudgetBytes)
                report.addGraph(
                    Severity::Error, "lut.memory-budget",
                    row + " certified peak " + std::to_string(peak) +
                        " bytes exceeds the memory budget of " +
                        std::to_string(options.memoryBudgetBytes) +
                        " bytes");
        }

        if (options.cost) {
            const double recomputed = options.cost(graph);
            const double denom =
                entry.resourceCost > 0.0 ? entry.resourceCost : 1.0;
            const double rel =
                std::abs(recomputed - entry.resourceCost) / denom;
            if (!std::isfinite(recomputed) ||
                rel > options.costRelTolerance)
                report.addGraph(
                    Severity::Error, "lut.stale-cost",
                    row + " stores cost " +
                        std::to_string(entry.resourceCost) +
                        " but the rebuilt graph costs " +
                        std::to_string(recomputed) +
                        " (stale row?)");
        }

        if (full_flops > 0.0 && entry.normalizedCost > 0.0) {
            const double ratio =
                static_cast<double>(graph.totalFlops()) / full_flops;
            if (ratio > 0.0) {
                const double drift =
                    std::abs(entry.normalizedCost - ratio) / ratio;
                if (drift > options.flopRelTolerance)
                    report.addGraph(
                        Severity::Warning, "lut.flop-drift",
                        row + " normalized cost " +
                            std::to_string(entry.normalizedCost) +
                            " vs recomputed FLOP ratio " +
                            std::to_string(ratio));
            }
        }
    }
    return report;
}

} // namespace vitdyn
