#include "analysis/kernel_cost.hh"

#include "graph/graph.hh"

namespace vitdyn
{

namespace
{

/** Conv layers the plan cache can price: rank-4 input, positive work. */
bool
convKeyOf(const Graph &graph, const Layer &layer, Conv2dShapeKey *key)
{
    if (layer.kind != LayerKind::Conv2d || layer.inputs.empty())
        return false;
    const Shape &in_shape = graph.layer(layer.inputs[0]).outShape;
    if (in_shape.size() != 4)
        return false;
    const LayerAttrs &a = layer.attrs;
    if (a.groups <= 0 || a.inChannels % a.groups != 0)
        return false;
    const Shape w_shape = {a.outChannels, a.inChannels / a.groups,
                           a.kernelH, a.kernelW};
    Conv2dParams p;
    p.strideH = a.strideH;
    p.strideW = a.strideW;
    p.padH = a.padH;
    p.padW = a.padW;
    p.groups = a.groups;
    *key = Conv2dShapeKey::of(in_shape, w_shape, p);
    return key->flops() > 0;
}

} // namespace

GraphCostFn
kernelCostOracle(ConvAutotuneOptions opts)
{
    return [opts](const Graph &graph) -> double {
        double ms = 0.0;
        for (const Layer &layer : graph.layers()) {
            if (layer.bypassed)
                continue;
            Conv2dShapeKey key;
            if (convKeyOf(graph, layer, &key)) {
                ms += ConvPlanCache::instance().measuredMs(key, opts);
                continue;
            }
            const int64_t flops = layer.flops();
            if (flops > 0)
                ms += double(flops) / calibratedFlopsPerMs();
        }
        return ms;
    };
}

} // namespace vitdyn
