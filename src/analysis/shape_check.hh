/**
 * @file
 * Independent re-derivation of shape and accounting rules.
 *
 * The linter cross-checks every Layer::outShape (and the FLOP/MAC/
 * param accounting behind the LUTs) against a SECOND implementation of
 * the inference rules, written from the documented layer semantics in
 * layer.hh rather than sharing code with graph/layer.cc. A bug in
 * either implementation — or a graph whose stored shapes were mutated
 * by surgery without a recompute — shows up as a "shape.mismatch" or
 * "acct.*" diagnostic instead of silently skewing a sweep.
 *
 * Keep this file free of includes from graph/layer.cc's helpers
 * (tensor/ops.hh convOutDim etc.); redundancy is the point.
 */

#ifndef VITDYN_ANALYSIS_SHAPE_CHECK_HH
#define VITDYN_ANALYSIS_SHAPE_CHECK_HH

#include <vector>

#include "graph/layer.hh"
#include "util/status.hh"

namespace vitdyn
{
namespace analysis
{

/**
 * Output shape of @p layer given @p inputs, derived from the semantics
 * documented in layer.hh. Error when the configuration is
 * inconsistent. Agrees with tryInferShape by construction of the
 * rules, not by sharing code.
 */
Result<Shape> deriveShape(const Layer &layer,
                          const std::vector<Shape> &inputs);

/** Multiply-accumulate count re-derived from attrs and outShape. */
int64_t deriveMacs(const Layer &layer);

/** Learned parameter count re-derived from attrs. */
int64_t deriveParams(const Layer &layer);

/** FLOP count re-derived from attrs and outShape (MAC convention of
 *  the paper: one multiply-accumulate = one FLOP). */
int64_t deriveFlops(const Layer &layer);

} // namespace analysis
} // namespace vitdyn

#endif // VITDYN_ANALYSIS_SHAPE_CHECK_HH
