/**
 * @file
 * Memory lint (mem.*): proves the in-place buffer-reuse plan safe.
 *
 * The `inplace-priority` pass annotates elementwise layers whose
 * output may overwrite their first input's buffer; the executor
 * re-verifies those annotations at run time against its own last-use
 * analysis. This lint is the *static* side of that contract: it
 * re-derives the soundness conditions from the Graph IR alone so an
 * unsound annotation is a build-time diagnostic, not a silent runtime
 * fallback — and so a certified memory plan (liveness.hh) can
 * coalesce verified steals without trusting the annotator.
 *
 * An annotated steal of buffer B = inputs[0] by layer L is sound iff:
 *
 *  - L's kind supports in-place execution (ReLU/GELU/Add/BatchNorm),
 *  - B's shape equals L's output shape (all activations are fp32, so
 *    shape equality is dtype/byte compatibility),
 *  - no layer scheduled after L reads B — directly, or through a
 *    zero-copy forwarder alias (Identity layers and bypassed layers
 *    forward their first input's buffer; Narrow and Concat always
 *    materialize fresh buffers in this IR, so they are consumers,
 *    not views), and
 *  - neither B nor any forwarder alias of it is a graph output (the
 *    caller reads those bytes after the run).
 *
 * Operands of L itself may alias B (Add(x, x) reads the stolen buffer
 * per-index while writing it, which the in-place kernels tolerate).
 *
 * Check ids: mem.inplace.kind, mem.inplace.no-input,
 * mem.inplace.shape, mem.inplace.not-last, mem.inplace.alias,
 * mem.inplace.output (all Error) and mem.inplace.bypassed (Warning —
 * a dead annotation the executor ignores).
 */

#ifndef VITDYN_ANALYSIS_MEMORY_LINT_HH
#define VITDYN_ANALYSIS_MEMORY_LINT_HH

#include <vector>

#include "analysis/diagnostic.hh"
#include "graph/graph.hh"

namespace vitdyn
{
namespace analysis
{

/**
 * Verify every in-place annotation in @p graph. Returns, per layer
 * id, the id of the buffer a proven-sound steal reuses (always
 * inputs[0]), or -1 for unannotated layers and annotations that fail
 * verification. When @p report is non-null each violated condition is
 * added as a mem.* Diagnostic (see the file comment for the catalog).
 */
std::vector<int> verifiedStealTargets(const Graph &graph,
                                      LintReport *report = nullptr);

/** lintGraph's mem.* family entry point. */
void checkMemory(const Graph &graph, LintReport &report);

} // namespace analysis
} // namespace vitdyn

#endif // VITDYN_ANALYSIS_MEMORY_LINT_HH
