#include "analysis/diagnostic.hh"

#include <sstream>

namespace vitdyn
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

void
LintReport::add(Diagnostic diagnostic)
{
    diagnostics_.push_back(std::move(diagnostic));
}

void
LintReport::add(Severity severity, std::string check, int layer_id,
                std::string layer_name, std::string message)
{
    Diagnostic d;
    d.severity = severity;
    d.check = std::move(check);
    d.layerId = layer_id;
    d.layerName = std::move(layer_name);
    d.message = std::move(message);
    diagnostics_.push_back(std::move(d));
}

void
LintReport::addGraph(Severity severity, std::string check,
                     std::string message)
{
    add(severity, std::move(check), -1, "", std::move(message));
}

void
LintReport::merge(const LintReport &other)
{
    diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                        other.diagnostics_.end());
}

void
LintReport::mergeWithContext(const LintReport &other,
                             const std::string &context)
{
    for (Diagnostic d : other.diagnostics_) {
        d.message = context + ": " + d.message;
        diagnostics_.push_back(std::move(d));
    }
}

size_t
LintReport::count(Severity severity) const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics_)
        if (d.severity == severity)
            ++n;
    return n;
}

bool
LintReport::clean() const
{
    return count(Severity::Error) == 0 && count(Severity::Warning) == 0;
}

Status
LintReport::toStatus() const
{
    const size_t errors = count(Severity::Error);
    if (errors == 0)
        return Status::ok();
    for (const Diagnostic &d : diagnostics_) {
        if (d.severity != Severity::Error)
            continue;
        std::ostringstream oss;
        oss << "lint: " << d.check << ": " << d.message;
        if (errors > 1)
            oss << " (+" << errors - 1 << " more error"
                << (errors > 2 ? "s" : "") << ")";
        return Status::error(oss.str());
    }
    return Status::error("lint: errors present");
}

std::string
LintReport::toText() const
{
    std::ostringstream oss;
    for (const Diagnostic &d : diagnostics_) {
        oss << severityName(d.severity) << " " << d.check;
        if (d.layerId >= 0 || !d.layerName.empty()) {
            oss << " [";
            if (d.layerId >= 0)
                oss << d.layerId;
            if (!d.layerName.empty())
                oss << (d.layerId >= 0 ? ":" : "") << d.layerName;
            oss << "]";
        }
        oss << " " << d.message << "\n";
    }
    return oss.str();
}

namespace
{

/** CSV-quote a field when it contains a delimiter, quote or newline. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
LintReport::toCsv() const
{
    std::ostringstream oss;
    oss << "severity,check,layer_id,layer_name,message\n";
    for (const Diagnostic &d : diagnostics_) {
        oss << severityName(d.severity) << "," << csvField(d.check)
            << "," << d.layerId << "," << csvField(d.layerName) << ","
            << csvField(d.message) << "\n";
    }
    return oss.str();
}

} // namespace vitdyn
