/**
 * @file
 * Diagnostics engine for the graph static-analysis subsystem.
 *
 * Every analysis check reports findings as structured Diagnostic
 * records collected into a LintReport, instead of asserting or
 * printing. This gives three consumers one shared currency:
 *
 *  - the `vitdyn_lint` CLI renders reports as text or CSV,
 *  - the serving engines turn Error-severity findings into config
 *    vetoes (quarantine-without-probation) while continuing to serve,
 *  - tests assert on exact check ids rather than message substrings.
 *
 * Severity policy: Error means "executing or trusting this graph/LUT
 * row is unsafe" (engines veto). Warning means "suspicious but
 * runnable" (duplicate layer names aliasing synthesized weights,
 * normalized-cost drift within loose tolerance). Info is advisory.
 */

#ifndef VITDYN_ANALYSIS_DIAGNOSTIC_HH
#define VITDYN_ANALYSIS_DIAGNOSTIC_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace vitdyn
{

/** How bad a finding is; see the file comment for the policy. */
enum class Severity
{
    Info,
    Warning,
    Error,
};

/** Printable name ("info" / "warning" / "error"). */
const char *severityName(Severity severity);

/** One finding of one check against one layer (or the whole graph). */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable dotted check id, e.g. "graph.cycle", "attr.conv.stride",
     *  "shape.mismatch", "lut.stale-cost". */
    std::string check;
    /** Offending layer id; -1 for graph- or LUT-level findings. */
    int layerId = -1;
    /** Offending layer name; empty for graph-level findings. */
    std::string layerName;
    /** Human-readable description of the violation. */
    std::string message;
};

/** All findings of one analysis run. */
class LintReport
{
  public:
    void add(Diagnostic diagnostic);

    /** Convenience for check implementations. */
    void add(Severity severity, std::string check, int layer_id,
             std::string layer_name, std::string message);

    /** Graph-level finding (no layer). */
    void addGraph(Severity severity, std::string check,
                  std::string message);

    /** Append every finding of @p other, unchanged. */
    void merge(const LintReport &other);

    /** Append @p other with "@p context: " prepended to each message
     *  (e.g. the config label when linting a LUT's graphs). */
    void mergeWithContext(const LintReport &other,
                          const std::string &context);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    size_t count(Severity severity) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }
    /** No findings at Warning or Error severity. */
    bool clean() const;

    /**
     * OK when the report has no errors; otherwise an error Status
     * carrying the first Error finding (and the total error count) —
     * the bridge into the engines' Status-based rejection paths.
     */
    Status toStatus() const;

    /** One "severity check [layer] message" line per finding. */
    std::string toText() const;

    /** CSV with header: severity,check,layer_id,layer_name,message. */
    std::string toCsv() const;

  private:
    std::vector<Diagnostic> diagnostics_;
};

} // namespace vitdyn

#endif // VITDYN_ANALYSIS_DIAGNOSTIC_HH
