/**
 * @file
 * Measured-kernel cost oracle: a GraphCostFn whose unit is estimated
 * wall-clock milliseconds on *this* host, derived from the conv-plan
 * autotuner's measurements instead of a uniform FLOP count.
 *
 * Pure FLOP cost models (analyticLatencyCost and friends) weigh every
 * layer by arithmetic volume alone, but the paper's Pareto frontiers
 * are built from *measured* latency — and measured conv time per FLOP
 * varies with shape (im2col-friendly vs direct, cache-resident vs
 * streaming). This oracle prices each Conv2d layer with the
 * ConvPlanCache's measured best-plan time for its exact shape
 * (measuring unseen shapes once, like executor warmup does) and every
 * other layer with a host-calibrated flops-per-millisecond rate, so
 * sweeps and LUTs rank execution paths by the time they would actually
 * take under the tuned kernels.
 */

#ifndef VITDYN_ANALYSIS_KERNEL_COST_HH
#define VITDYN_ANALYSIS_KERNEL_COST_HH

#include "resilience/sweep.hh"
#include "tensor/kernels/conv_autotune.hh"

namespace vitdyn
{

/**
 * Cost function returning estimated milliseconds for a graph.
 *
 * Conv2d layers are priced by ConvPlanCache::measuredMs for their
 * shape key (built from the producer's output shape and the layer
 * attrs); shapes below @p opts.minMeasureFlops — or any layer that is
 * not a rank-4 conv — fall back to flops / calibratedFlopsPerMs().
 * Bypassed layers cost nothing. The returned callable is safe to copy
 * and call concurrently (the plan cache is mutex-protected).
 *
 * With @p opts.enabled false no new measurements are ever taken and
 * the oracle degrades to a calibrated-FLOP model — still in
 * milliseconds, just without per-shape fidelity.
 */
GraphCostFn kernelCostOracle(ConvAutotuneOptions opts = {
                                 /*enabled=*/true});

} // namespace vitdyn

#endif // VITDYN_ANALYSIS_KERNEL_COST_HH
