/**
 * @file
 * Static liveness analysis over the Graph IR.
 *
 * Re-derives producer/consumer buffer lifetimes from the topological
 * schedule alone — an independent second implementation, on purpose
 * *not* sharing code with the executor's runtime accounting — so the
 * two can cross-check each other (the same discipline as the
 * shape-flow and FLOP lints). The model mirrors the executor's
 * ordering exactly:
 *
 *  - a layer's output buffer is born at its own schedule step, and its
 *    bytes are charged *before* any input buffer is released, so a
 *    buffer is still live at the step of its last consumer;
 *  - a buffer dies after its last consumer's step, unless it is a
 *    graph output or has no consumers at all (the executor keeps both
 *    in its value table until the run ends), in which case it stays
 *    live to the end of the schedule;
 *  - all activations are fp32 (4 bytes/element), matching the
 *    executor's `numel * sizeof(float)` accounting.
 *
 * On top of the lifetimes, planMemory() runs a deterministic best-fit
 * offset assignment over the interference graph (two buffers
 * interfere iff their [birth, death] intervals overlap) and reports:
 *
 *  - certifiedPeakBytes: the arena size of the *no-steal* plan. Every
 *    execution mode — fp32 with or without in-place steals, int8
 *    (which disables steals) — allocates a subset of these lifetimes,
 *    so this is a sound static upper bound on runtime peak live
 *    bytes. The executor asserts against it in debug builds.
 *  - plannedPeakBytes: the arena size once every *verified* in-place
 *    annotation (see memory_lint.hh) coalesces the stealing layer's
 *    buffer with its first input's.
 */

#ifndef VITDYN_ANALYSIS_LIVENESS_HH
#define VITDYN_ANALYSIS_LIVENESS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace vitdyn
{
namespace analysis
{

/** Lifetime of one layer's output buffer, in schedule steps. */
struct BufferLifetime
{
    int layerId = -1;
    /** fp32 activation bytes (shapeNumel * 4). */
    size_t bytes = 0;
    /** Producer's schedule step (== layer id in a normalized graph). */
    int birth = 0;
    /**
     * Last schedule step the buffer is live at, inclusive. Equals the
     * last consumer's step, or numLayers() for graph outputs and
     * consumer-less layers (held until the run ends).
     */
    int death = 0;
    /** Graph output or consumer-less: never released mid-run. */
    bool pinned = false;
};

/** Per-graph liveness summary. */
struct LivenessInfo
{
    /** Indexed by layer id. */
    std::vector<BufferLifetime> buffers;
    /** Peak of simultaneously-live bytes over the schedule. */
    size_t maxLiveBytes = 0;
    /** Peak of simultaneously-live buffer count. */
    size_t maxLiveTensors = 0;
    /** Sum of all buffer bytes (no reuse at all). */
    size_t totalBytes = 0;
    /** Schedule step where maxLiveBytes is reached; -1 if empty. */
    int peakStep = -1;

    /** Do the two buffers' lifetime intervals overlap? */
    bool interferes(int a, int b) const;
};

/** Walk @p graph in schedule order and derive every buffer lifetime. */
LivenessInfo analyzeLiveness(const Graph &graph);

/**
 * Deterministic best-fit arena assignment over @p info's interference
 * graph. Buffers are placed in (birth, layerId) order; each takes the
 * tightest feasible gap between already-placed interfering buffers
 * (ties resolved toward the lowest offset), 64-byte aligned.
 *
 * @p merge_into maps each layer id to the id whose buffer it reuses
 * (-1 = owns its buffer). Chains are followed to the root; merged
 * groups get the union of their members' lifetimes and the max of
 * their sizes. Pass an empty vector for the no-steal plan.
 *
 * @p offsets (optional) receives the byte offset per layer id.
 * Returns the arena size in bytes.
 */
size_t assignOffsets(const LivenessInfo &info,
                     const std::vector<int> &merge_into,
                     std::vector<int64_t> *offsets = nullptr);

/** Certified bound plus the steal-coalesced plan for one graph. */
struct MemoryPlan
{
    /** No-steal best-fit arena size: the certified static bound. */
    size_t certifiedPeakBytes = 0;
    /** Tight liveness peak (lower bound on any arena size). */
    size_t maxLiveBytes = 0;
    /** Arena size with every verified in-place steal coalesced. */
    size_t plannedPeakBytes = 0;
    /** certifiedPeakBytes - plannedPeakBytes. */
    size_t stealSavedBytes = 0;
    /** Sum of all buffer bytes, for reuse-ratio reporting. */
    size_t totalBytes = 0;
    /** Per-layer arena offsets of the no-steal (certified) plan. */
    std::vector<int64_t> offsets;
    /** Per-layer offsets of the steal-coalesced plan (members of a
     *  merged group share their root's offset). */
    std::vector<int64_t> plannedOffsets;
};

/**
 * analyzeLiveness + assignOffsets twice: once with no merges (the
 * certified bound) and once coalescing every in-place annotation that
 * verifiedStealTargets() (memory_lint.hh) proves sound.
 */
MemoryPlan planMemory(const Graph &graph);

/** Shorthand for planMemory(graph).certifiedPeakBytes. */
size_t certifiedPeakBytes(const Graph &graph);

} // namespace analysis
} // namespace vitdyn

#endif // VITDYN_ANALYSIS_LIVENESS_HH
