/**
 * @file
 * Graph linter: the static-analysis battery over the model IR.
 *
 * lintGraph inspects any Graph without touching tensor data and
 * reports structured diagnostics (see diagnostic.hh) across five
 * check families:
 *
 *  - structure (graph.*): dangling/forward input references, cycles
 *    (detected independently of normalize()'s Kahn sort), unreachable
 *    layers, duplicate layer names (which alias synthesized weights —
 *    the store keys on name), malformed input/output lists.
 *
 *  - attributes (attr.*): per-LayerKind sanity — positive kernels and
 *    strides, non-negative padding, `groups` dividing both channel
 *    counts, `numHeads` dividing the attention width, window/grid
 *    divisibility.
 *
 *  - shape flow (shape.*): every stored Layer::outShape re-derived by
 *    an independent second implementation of the inference rules
 *    (analysis::deriveShape) and cross-checked.
 *
 *  - accounting (acct.*): FLOPs / MACs / parameter counts re-derived
 *    and cross-checked against the Layer methods the LUTs and sweeps
 *    are built from.
 *
 *  - memory (mem.*): every `inplace-priority` buffer-steal annotation
 *    proven sound against an independent liveness/aliasing model
 *    (memory_lint.hh); the certified peak-bytes planner in
 *    liveness.hh coalesces only verified steals.
 *
 * The full catalog with severities lives in DESIGN.md.
 */

#ifndef VITDYN_ANALYSIS_LINT_HH
#define VITDYN_ANALYSIS_LINT_HH

#include "analysis/diagnostic.hh"
#include "graph/graph.hh"

namespace vitdyn
{

/** One sanctioned lint exception (see LintOptions::suppressions). */
struct LintSuppression
{
    /** Exact check id to drop, e.g. "graph.unreachable". */
    std::string check;
    /** Dropped only when the finding's layer name contains this
     *  (empty never matches: graph-level findings have no layer). */
    std::string layerNameContains;
};

/** Which check families run, and tunable severities. */
struct LintOptions
{
    bool structure = true;
    bool attributes = true;
    bool shapes = true;
    bool accounting = true;
    /** mem.*: in-place steal-plan verification (memory_lint.hh). */
    bool memory = true;

    /**
     * Duplicate layer names alias weight storage (the store keys on
     * (seed, name, dims)) — suspicious but intentional in some
     * builders, so a Warning by default.
     */
    Severity duplicateNameSeverity = Severity::Warning;

    /**
     * Sanctioned exceptions: drop any diagnostic whose check id
     * matches and whose layer name contains the substring. The
     * escape hatch for builders that intentionally carry dead
     * compute — e.g. the deformable-DETR proxy's cost-only
     * sampling-offset projections.
     */
    std::vector<LintSuppression> suppressions;
};

/** Run every enabled check family over @p graph. */
LintReport lintGraph(const Graph &graph, const LintOptions &options = {});

} // namespace vitdyn

#endif // VITDYN_ANALYSIS_LINT_HH
