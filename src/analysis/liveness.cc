#include "analysis/liveness.hh"

#include <algorithm>
#include <limits>

#include "analysis/memory_lint.hh"

namespace vitdyn
{
namespace analysis
{

namespace
{

constexpr size_t kArenaAlign = 64;

size_t
alignUp(size_t value)
{
    return (value + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

} // namespace

bool
LivenessInfo::interferes(int a, int b) const
{
    if (a < 0 || b < 0 || a >= static_cast<int>(buffers.size()) ||
        b >= static_cast<int>(buffers.size()))
        return false;
    const BufferLifetime &ba = buffers[a];
    const BufferLifetime &bb = buffers[b];
    if (ba.bytes == 0 || bb.bytes == 0)
        return false;
    return ba.birth <= bb.death && bb.birth <= ba.death;
}

LivenessInfo
analyzeLiveness(const Graph &graph)
{
    const int n = static_cast<int>(graph.numLayers());
    LivenessInfo info;
    info.buffers.resize(n);

    std::vector<char> is_output(n, 0);
    for (int out_id : graph.outputs())
        if (out_id >= 0 && out_id < n)
            is_output[out_id] = 1;

    for (int i = 0; i < n; ++i) {
        BufferLifetime &buffer = info.buffers[i];
        buffer.layerId = i;
        const int64_t numel = shapeNumel(graph.layer(i).outShape);
        buffer.bytes =
            numel > 0 ? static_cast<size_t>(numel) * sizeof(float) : 0;
        buffer.birth = i;
        buffer.death = i;
        info.totalBytes += buffer.bytes;
    }

    // Death = last consumer's schedule step: the buffer must survive
    // *through* that step because the executor charges the consumer's
    // output before releasing its inputs.
    std::vector<char> consumed(n, 0);
    for (int i = 0; i < n; ++i)
        for (int in_id : graph.layer(i).inputs)
            if (in_id >= 0 && in_id < n) {
                consumed[in_id] = 1;
                info.buffers[in_id].death =
                    std::max(info.buffers[in_id].death, i);
            }

    // Graph outputs and consumer-less layers are held in the value
    // table until the run ends.
    for (int i = 0; i < n; ++i)
        if (is_output[i] || !consumed[i]) {
            info.buffers[i].death = n;
            info.buffers[i].pinned = true;
        }

    // Sweep the schedule mirroring the executor's ordering: the
    // step's output is charged first, then buffers whose last
    // consumer is this step are released.
    std::vector<std::vector<int>> frees(n);
    for (int i = 0; i < n; ++i)
        if (!info.buffers[i].pinned && info.buffers[i].death < n)
            frees[info.buffers[i].death].push_back(i);
    size_t live_bytes = 0;
    size_t live_tensors = 0;
    for (int step = 0; step < n; ++step) {
        live_bytes += info.buffers[step].bytes;
        ++live_tensors;
        if (live_bytes > info.maxLiveBytes) {
            info.maxLiveBytes = live_bytes;
            info.peakStep = step;
        }
        info.maxLiveTensors = std::max(info.maxLiveTensors, live_tensors);
        for (int freed : frees[step]) {
            live_bytes -= info.buffers[freed].bytes;
            --live_tensors;
        }
    }
    return info;
}

size_t
assignOffsets(const LivenessInfo &info, const std::vector<int> &merge_into,
              std::vector<int64_t> *offsets)
{
    const int n = static_cast<int>(info.buffers.size());
    if (offsets) {
        offsets->assign(n, 0);
    }
    if (n == 0)
        return 0;

    // Resolve merge chains to roots with a bounded chase (a stealer
    // can itself be stolen from: conv -> bn -> relu coalesces to one
    // buffer).
    std::vector<int> root(n);
    for (int i = 0; i < n; ++i) {
        int r = i;
        for (int steps = 0; steps <= n; ++steps) {
            if (r < 0 || r >= static_cast<int>(merge_into.size()) ||
                merge_into[r] < 0 || merge_into[r] == r)
                break;
            r = merge_into[r];
        }
        root[i] = (r >= 0 && r < n) ? r : i;
    }

    // One allocation group per root: union of member lifetimes, max of
    // member sizes (verified steals are shape-equal, so max == all).
    struct GroupBuffer
    {
        int rootId = -1;
        size_t bytes = 0;
        int birth = std::numeric_limits<int>::max();
        int death = -1;
        int64_t offset = 0;
    };
    std::vector<int> group_of(n, -1);
    std::vector<GroupBuffer> groups;
    for (int i = 0; i < n; ++i) {
        const int r = root[i];
        if (group_of[r] < 0) {
            group_of[r] = static_cast<int>(groups.size());
            groups.push_back({});
            groups.back().rootId = r;
        }
        GroupBuffer &group = groups[group_of[r]];
        group.bytes = std::max(group.bytes, info.buffers[i].bytes);
        group.birth = std::min(group.birth, info.buffers[i].birth);
        group.death = std::max(group.death, info.buffers[i].death);
    }

    // Deterministic placement order: groups are created in ascending
    // root-id order (a steal target always precedes its stealer), and
    // root id == birth step, so this is (birth, id) order already.
    size_t arena = 0;
    std::vector<int> placed; // group indices, already assigned
    std::vector<std::pair<int64_t, int64_t>> busy; // [offset, end)
    for (size_t g = 0; g < groups.size(); ++g) {
        GroupBuffer &group = groups[g];
        if (group.bytes == 0)
            continue;
        busy.clear();
        for (int p : placed) {
            const GroupBuffer &other = groups[p];
            if (group.birth <= other.death && other.birth <= group.death)
                busy.emplace_back(other.offset,
                                  other.offset +
                                      static_cast<int64_t>(other.bytes));
        }
        std::sort(busy.begin(), busy.end());

        // Best fit: tightest gap between interfering placements that
        // holds the buffer; ties go to the lowest offset because the
        // sweep visits gaps in ascending order.
        const int64_t bytes = static_cast<int64_t>(group.bytes);
        int64_t cursor = 0;
        int64_t best_offset = -1;
        int64_t best_gap = std::numeric_limits<int64_t>::max();
        for (const auto &interval : busy) {
            if (interval.first > cursor) {
                const int64_t gap = interval.first - cursor;
                if (gap >= bytes && gap < best_gap) {
                    best_gap = gap;
                    best_offset = cursor;
                }
            }
            cursor = std::max(
                cursor, static_cast<int64_t>(
                            alignUp(static_cast<size_t>(interval.second))));
        }
        if (best_offset < 0)
            best_offset = cursor; // open-ended gap at the arena top
        group.offset = best_offset;
        placed.push_back(static_cast<int>(g));
        arena = std::max(arena,
                         static_cast<size_t>(best_offset) + group.bytes);
    }

    if (offsets)
        for (int i = 0; i < n; ++i)
            (*offsets)[i] = groups.empty() ? 0 : groups[group_of[root[i]]].offset;
    return arena;
}

MemoryPlan
planMemory(const Graph &graph)
{
    MemoryPlan plan;
    const LivenessInfo info = analyzeLiveness(graph);
    plan.maxLiveBytes = info.maxLiveBytes;
    plan.totalBytes = info.totalBytes;
    plan.certifiedPeakBytes = assignOffsets(info, {}, &plan.offsets);
    const std::vector<int> merges = verifiedStealTargets(graph, nullptr);
    plan.plannedPeakBytes = assignOffsets(info, merges, &plan.plannedOffsets);
    plan.stealSavedBytes =
        plan.certifiedPeakBytes > plan.plannedPeakBytes
            ? plan.certifiedPeakBytes - plan.plannedPeakBytes
            : 0;
    return plan;
}

size_t
certifiedPeakBytes(const Graph &graph)
{
    const LivenessInfo info = analyzeLiveness(graph);
    return assignOffsets(info, {}, nullptr);
}

} // namespace analysis
} // namespace vitdyn
