/**
 * @file
 * LUT cross-checking: catches stale or corrupt accuracy/resource rows
 * before a serving engine trusts them.
 *
 * A LUT is built offline and loaded from operator-supplied files, so
 * its rows can drift out of sync with the code that builds graphs
 * (builder changes, prune-rule changes, hand edits). checkLut rebuilds
 * every row's pruned graph and cross-checks:
 *
 *  - feasibility: the config passes validatePrune and its graph lints
 *    clean of errors (lut.config / graph-level findings),
 *  - ordering and numeric sanity of costs and accuracy estimates,
 *  - exact resource cost, when the caller supplies the same GraphCostFn
 *    the LUT was generated with (lut.stale-cost, Error severity — this
 *    is the stale-row detector), and
 *  - normalized-cost vs recomputed-FLOP-ratio drift at a loose
 *    tolerance (lut.flop-drift, Warning — native cost units are not
 *    FLOPs, so only gross drift is flagged without a cost function).
 */

#ifndef VITDYN_ANALYSIS_LUT_CHECK_HH
#define VITDYN_ANALYSIS_LUT_CHECK_HH

#include "analysis/lint.hh"
#include "engine/lut.hh"
#include "resilience/sweep.hh"

namespace vitdyn
{

/** Tolerances and the optional exact-cost oracle. */
struct LutCheckOptions
{
    /**
     * The cost function the LUT was generated with. When set, each
     * row's resourceCost is recomputed from its rebuilt graph and a
     * relative mismatch beyond costRelTolerance is an Error
     * ("lut.stale-cost"). When empty, only the loose FLOP-ratio
     * Warning applies.
     */
    GraphCostFn cost;
    double costRelTolerance = 0.05;

    /** Loose bound for |normalizedCost - flopRatio| / flopRatio. */
    double flopRelTolerance = 0.25;

    /**
     * When > 0, every row's rebuilt graph gets a certified static
     * peak-activation bound (analysis::certifiedPeakBytes) and a row
     * whose bound exceeds the budget is an Error ("lut.memory-budget")
     * — the engines turn it into a load-time config veto.
     */
    size_t memoryBudgetBytes = 0;

    /** Lint options applied to every rebuilt per-row graph. */
    LintOptions lint;
};

/**
 * Cross-check every row of @p lut against graphs rebuilt from
 * @p family's base config. Diagnostics carry the row's config label in
 * their message.
 */
LintReport checkLut(const AccuracyResourceLut &lut, ModelFamily family,
                    const SegformerConfig &seg_base,
                    const SwinConfig &swin_base,
                    const LutCheckOptions &options = {});

} // namespace vitdyn

#endif // VITDYN_ANALYSIS_LUT_CHECK_HH
