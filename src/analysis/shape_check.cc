#include "analysis/shape_check.hh"

#include "util/logging.hh"

namespace vitdyn
{
namespace analysis
{

namespace
{

int64_t
numel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape)
        n *= d;
    return n;
}

Status
derivationError(const Layer &layer, const std::string &detail)
{
    return Status::error(detail::formatParts(
        "derive '", layer.name, "' (", layerKindName(layer.kind), "): ",
        detail));
}

/**
 * Output extent of a sliding window (convolution / max-pool):
 * floor((in + 2*pad - kernel) / stride) + 1, valid only when the
 * padded input covers at least one window and the stride is positive.
 */
Result<int64_t>
slidingExtent(const Layer &layer, int64_t in, int64_t kernel,
              int64_t stride, int64_t pad)
{
    if (stride <= 0)
        return derivationError(layer, "stride must be positive");
    const int64_t span = in + 2 * pad - kernel;
    if (span < 0)
        return derivationError(layer, "window larger than padded input");
    return span / stride + 1;
}

bool
isRank(const Shape &shape, size_t rank)
{
    return shape.size() == rank;
}

} // namespace

Result<Shape>
deriveShape(const Layer &layer, const std::vector<Shape> &inputs)
{
    const LayerAttrs &a = layer.attrs;

    auto single = [&]() -> Result<Shape> {
        if (inputs.size() != 1)
            return derivationError(layer, "wants exactly one input");
        return inputs[0];
    };

    switch (layer.kind) {
      case LayerKind::Input:
        return derivationError(layer, "inputs have no derivation");

      case LayerKind::Conv2d: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (!isRank(x, 4))
            return derivationError(layer, "wants an NCHW input");
        if (x[1] != a.inChannels)
            return derivationError(layer, "input channel mismatch");
        Result<int64_t> h =
            slidingExtent(layer, x[2], a.kernelH, a.strideH, a.padH);
        if (!h)
            return h.status();
        Result<int64_t> w =
            slidingExtent(layer, x[3], a.kernelW, a.strideW, a.padW);
        if (!w)
            return w.status();
        return Shape{x[0], a.outChannels, h.value(), w.value()};
      }

      case LayerKind::Linear: {
        Result<Shape> in = single();
        if (!in)
            return in;
        Shape x = in.take();
        if (x.empty() || x.back() != a.inFeatures)
            return derivationError(layer, "last-dim feature mismatch");
        x.back() = a.outFeatures;
        return x;
      }

      case LayerKind::AttentionScore: {
        if (inputs.size() != 2)
            return derivationError(layer, "wants Q and K");
        const Shape &q = inputs[0];
        const Shape &k = inputs[1];
        if (!isRank(q, 3) || !isRank(k, 3))
            return derivationError(layer, "wants rank-3 Q and K");
        if (q[0] != k[0] || q[2] != k[2])
            return derivationError(layer, "Q/K batch or channel mismatch");
        if (q[2] != a.inFeatures)
            return derivationError(layer, "channel attr mismatch");
        return Shape{q[0], a.numHeads, q[1], k[1]};
      }

      case LayerKind::AttentionContext: {
        if (inputs.size() != 2)
            return derivationError(layer, "wants scores and V");
        const Shape &s = inputs[0];
        const Shape &v = inputs[1];
        if (!isRank(s, 4) || !isRank(v, 3))
            return derivationError(layer,
                                   "wants rank-4 scores and rank-3 V");
        if (s[3] != v[1] || s[3] != a.inFeatures)
            return derivationError(layer, "Lkv mismatch");
        return Shape{s[0], s[2], v[2]};
      }

      case LayerKind::Softmax:
      case LayerKind::LayerNorm:
      case LayerKind::ReLU:
      case LayerKind::GELU:
      case LayerKind::Identity:
        return single();

      case LayerKind::BatchNorm: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (!isRank(x, 4) || x[1] != a.inChannels)
            return derivationError(layer, "channel mismatch");
        return x;
      }

      case LayerKind::Add: {
        if (inputs.size() != 2)
            return derivationError(layer, "wants two inputs");
        if (inputs[0] != inputs[1])
            return derivationError(layer, "operand shapes differ");
        return inputs[0];
      }

      case LayerKind::Concat: {
        if (inputs.empty())
            return derivationError(layer, "wants at least one input");
        Shape out = inputs[0];
        if (!isRank(out, 4) && !isRank(out, 3))
            return derivationError(layer, "wants NCHW or (N, L, C)");
        // Stacks along dimension 1 in both layouts (channels for NCHW,
        // tokens for (N, L, C)); all other dims must agree.
        for (size_t i = 1; i < inputs.size(); ++i) {
            const Shape &x = inputs[i];
            if (x.size() != out.size())
                return derivationError(layer, "input rank mismatch");
            for (size_t d = 0; d < out.size(); ++d)
                if (d != 1 && x[d] != out[d])
                    return derivationError(layer,
                                           "non-stacked dim mismatch");
            out[1] += x[1];
        }
        return out;
      }

      case LayerKind::Interpolate:
      case LayerKind::AvgPool: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (!isRank(x, 4))
            return derivationError(layer, "wants an NCHW input");
        if (a.outH <= 0 || a.outW <= 0)
            return derivationError(layer, "target size not positive");
        return Shape{x[0], x[1], a.outH, a.outW};
      }

      case LayerKind::MaxPool: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (!isRank(x, 4))
            return derivationError(layer, "wants an NCHW input");
        Result<int64_t> h =
            slidingExtent(layer, x[2], a.kernelH, a.strideH, a.padH);
        if (!h)
            return h.status();
        Result<int64_t> w =
            slidingExtent(layer, x[3], a.kernelW, a.strideW, a.padW);
        if (!w)
            return w.status();
        return Shape{x[0], x[1], h.value(), w.value()};
      }

      case LayerKind::TokensToImage: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (!isRank(x, 3) || x[1] != a.gridH * a.gridW)
            return derivationError(layer, "token count != grid");
        return Shape{x[0], x[2], a.gridH, a.gridW};
      }

      case LayerKind::ImageToTokens: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (!isRank(x, 4))
            return derivationError(layer, "wants an NCHW input");
        return Shape{x[0], x[2] * x[3], x[1]};
      }

      case LayerKind::Narrow: {
        Result<Shape> in = single();
        if (!in)
            return in;
        Shape x = in.take();
        if (x.empty())
            return derivationError(layer, "wants a ranked input");
        const size_t channel_dim = isRank(x, 4) ? 1 : x.size() - 1;
        if (a.outChannels <= 0 || a.outChannels > x[channel_dim])
            return derivationError(layer, "slice out of range");
        x[channel_dim] = a.outChannels;
        return x;
      }

      case LayerKind::Patchify: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        const int64_t patch = a.kernelH;
        if (!isRank(x, 4) || patch <= 0 || x[2] % patch != 0 ||
            x[3] % patch != 0)
            return derivationError(layer,
                                   "image not divisible into patches");
        return Shape{x[0], (x[2] / patch) * (x[3] / patch),
                     x[1] * patch * patch};
      }

      case LayerKind::WindowPartition: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (a.window <= 0 || a.gridH % a.window != 0 ||
            a.gridW % a.window != 0)
            return derivationError(layer,
                                   "grid not divisible into windows");
        if (!isRank(x, 3) || x[1] != a.gridH * a.gridW)
            return derivationError(layer, "token count != grid");
        const int64_t windows =
            (a.gridH / a.window) * (a.gridW / a.window);
        return Shape{x[0] * windows, a.window * a.window, x[2]};
      }

      case LayerKind::WindowReverse: {
        Result<Shape> in = single();
        if (!in)
            return in;
        const Shape &x = in.value();
        if (a.window <= 0 || a.gridH % a.window != 0 ||
            a.gridW % a.window != 0)
            return derivationError(layer,
                                   "grid not divisible into windows");
        const int64_t windows =
            (a.gridH / a.window) * (a.gridW / a.window);
        if (!isRank(x, 3) || x[0] % windows != 0 ||
            x[1] != a.window * a.window)
            return derivationError(layer, "batch/window mismatch");
        return Shape{x[0] / windows, a.gridH * a.gridW, x[2]};
      }
    }
    return derivationError(layer, "unknown layer kind");
}

int64_t
deriveMacs(const Layer &layer)
{
    if (layer.bypassed)
        return 0;
    const LayerAttrs &a = layer.attrs;
    switch (layer.kind) {
      case LayerKind::Conv2d: {
        if (a.groups <= 0)
            return 0;
        // Each of the N*K*P*Q outputs reduces over (C/g)*R*S taps.
        return numel(layer.outShape) * (a.inChannels / a.groups) *
               a.kernelH * a.kernelW;
      }
      case LayerKind::Linear: {
        if (a.outFeatures <= 0)
            return 0;
        const int64_t rows = numel(layer.outShape) / a.outFeatures;
        return rows * a.inFeatures * a.outFeatures;
      }
      case LayerKind::AttentionScore: {
        if (a.numHeads <= 0)
            return 0;
        // (N, h, Lq, Lkv) outputs, each a dot product of length dh.
        return numel(layer.outShape) * (a.inFeatures / a.numHeads);
      }
      case LayerKind::AttentionContext:
        // (N, Lq, C) outputs, each summing over Lkv (= inFeatures).
        return numel(layer.outShape) * a.inFeatures;
      default:
        return 0;
    }
}

int64_t
deriveParams(const Layer &layer)
{
    if (layer.bypassed)
        return 0;
    const LayerAttrs &a = layer.attrs;
    switch (layer.kind) {
      case LayerKind::Conv2d: {
        if (a.groups <= 0)
            return 0;
        const int64_t bias = a.hasBias ? a.outChannels : 0;
        // A fused BatchNorm keeps its per-channel affine pair; the
        // params travel with the conv so graph totals are invariant
        // under fusion.
        const int64_t epilogue =
            layer.fused.bn ? 2 * a.outChannels : 0;
        return a.outChannels * (a.inChannels / a.groups) * a.kernelH *
                   a.kernelW +
               bias + epilogue;
      }
      case LayerKind::Linear: {
        const int64_t bias = a.hasBias ? a.outFeatures : 0;
        return a.inFeatures * a.outFeatures + bias;
      }
      case LayerKind::LayerNorm:
        return 2 * a.inFeatures; // scale + shift per feature
      case LayerKind::BatchNorm:
        return 2 * a.inChannels; // folded scale + shift per channel
      default:
        return 0;
    }
}

int64_t
deriveFlops(const Layer &layer)
{
    if (layer.bypassed)
        return 0;
    const int64_t elems = numel(layer.outShape);
    switch (layer.kind) {
      case LayerKind::Conv2d: {
        // MAC-counting convention (one multiply-accumulate = 1 FLOP),
        // plus whatever epilogue work fusion absorbed from the
        // original BatchNorm (2/elem) and activation (ReLU 1/elem,
        // GELU 8/elem) layers.
        int64_t flops = deriveMacs(layer);
        if (layer.fused.bn)
            flops += 2 * elems;
        if (layer.fused.activation == LayerKind::ReLU)
            flops += elems;
        else if (layer.fused.activation == LayerKind::GELU)
            flops += 8 * elems;
        return flops;
      }
      case LayerKind::Linear:
      case LayerKind::AttentionScore:
      case LayerKind::AttentionContext:
        return deriveMacs(layer);
      case LayerKind::Softmax:
        return 5 * elems;
      case LayerKind::LayerNorm:
      case LayerKind::GELU:
      case LayerKind::Interpolate:
        return 8 * elems;
      case LayerKind::BatchNorm:
        return 2 * elems;
      case LayerKind::ReLU:
      case LayerKind::Add:
        return elems;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        return elems * layer.attrs.kernelH * layer.attrs.kernelW;
      default:
        return 0;
    }
}

} // namespace analysis
} // namespace vitdyn
