#include "analysis/lint.hh"

#include <map>
#include <sstream>

#include "analysis/memory_lint.hh"
#include "analysis/shape_check.hh"

namespace vitdyn
{

namespace
{

std::string
shapeText(const Shape &shape)
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < shape.size(); ++i)
        oss << (i ? ", " : "") << shape[i];
    oss << "]";
    return oss.str();
}

/** Per-layer flags threaded between check families. */
struct LayerState
{
    bool edgesOk = true; ///< All input references valid and backward.
    bool attrsOk = true; ///< No attr.* errors (gates acct checks).
};

void
checkStructure(const Graph &graph, const LintOptions &options,
               LintReport &report, std::vector<LayerState> &state)
{
    const std::vector<Layer> &layers = graph.layers();
    const int n = static_cast<int>(layers.size());

    if (n == 0)
        report.addGraph(Severity::Error, "graph.empty",
                        "graph has no layers");
    if (graph.outputs().empty())
        report.addGraph(Severity::Error, "graph.no-outputs",
                        "graph has no outputs");
    for (int id : graph.outputs())
        if (id < 0 || id >= n)
            report.addGraph(Severity::Error, "graph.output-range",
                            "output id " + std::to_string(id) +
                                " out of range");
    for (int id : graph.inputs()) {
        if (id < 0 || id >= n) {
            report.addGraph(Severity::Error, "graph.input-range",
                            "input id " + std::to_string(id) +
                                " out of range");
        } else if (layers[id].kind != LayerKind::Input) {
            report.add(Severity::Error, "graph.input-kind", id,
                       layers[id].name,
                       "listed as a graph input but is not an Input "
                       "layer");
        }
    }

    // Dense ids: layer(id) indexes the vector directly, so ids must
    // equal positions. One finding is enough.
    for (int i = 0; i < n; ++i) {
        if (layers[i].id != i) {
            report.add(Severity::Error, "graph.id-dense", layers[i].id,
                       layers[i].name,
                       "layer id does not match its vector position " +
                           std::to_string(i));
            break;
        }
    }

    // Edge validity: in-range and strictly backward (the vector order
    // is the executor's schedule).
    for (int i = 0; i < n; ++i) {
        const Layer &layer = layers[i];
        if (layer.kind == LayerKind::Input && !layer.inputs.empty()) {
            report.add(Severity::Error, "graph.input-kind", layer.id,
                       layer.name, "Input layer has producers");
            state[i].edgesOk = false;
        }
        for (int in_id : layer.inputs) {
            if (in_id < 0 || in_id >= n) {
                report.add(Severity::Error, "graph.dangling-input",
                           layer.id, layer.name,
                           "references nonexistent layer id " +
                               std::to_string(in_id));
                state[i].edgesOk = false;
            } else if (in_id >= i) {
                report.add(Severity::Error, "graph.forward-input",
                           layer.id, layer.name,
                           "references layer id " +
                               std::to_string(in_id) +
                               " at or after its own position (not a "
                               "topological order)");
                state[i].edgesOk = false;
            }
        }
    }

    // Cycle detection, deliberately independent of normalize(): Kahn
    // over the raw edge list (in-range edges only), ignoring vector
    // order entirely.
    {
        std::vector<int> indegree(n, 0);
        std::vector<std::vector<int>> consumers(n);
        for (int i = 0; i < n; ++i) {
            for (int in_id : layers[i].inputs) {
                if (in_id < 0 || in_id >= n)
                    continue;
                ++indegree[i];
                consumers[in_id].push_back(i);
            }
        }
        std::vector<int> ready;
        for (int i = 0; i < n; ++i)
            if (indegree[i] == 0)
                ready.push_back(i);
        size_t processed = 0;
        while (processed < ready.size()) {
            const int id = ready[processed++];
            for (int next : consumers[id])
                if (--indegree[next] == 0)
                    ready.push_back(next);
        }
        if (static_cast<int>(processed) != n)
            report.addGraph(Severity::Error, "graph.cycle",
                            "dependency cycle through " +
                                std::to_string(n - processed) +
                                " layer(s)");
    }

    // Reachability: layers no output depends on are dead weight that
    // normalize() would silently drop (Input layers are exempt — they
    // are kept by design).
    {
        std::vector<bool> live(n, false);
        std::vector<int> stack;
        for (int id : graph.outputs())
            if (id >= 0 && id < n)
                stack.push_back(id);
        while (!stack.empty()) {
            const int id = stack.back();
            stack.pop_back();
            if (live[id])
                continue;
            live[id] = true;
            for (int in_id : layers[id].inputs)
                if (in_id >= 0 && in_id < n)
                    stack.push_back(in_id);
        }
        for (int i = 0; i < n; ++i)
            if (!live[i] && layers[i].kind != LayerKind::Input)
                report.add(Severity::Warning, "graph.unreachable",
                           layers[i].id, layers[i].name,
                           "no graph output depends on this layer");
    }

    // Duplicate names alias synthesized weights (store keys on name).
    {
        std::map<std::string, int> first_id;
        for (const Layer &layer : layers) {
            auto [it, inserted] =
                first_id.emplace(layer.name, layer.id);
            if (!inserted)
                report.add(options.duplicateNameSeverity,
                           "graph.duplicate-name", layer.id, layer.name,
                           "name already used by layer " +
                               std::to_string(it->second) +
                               "; synthesized weights alias by name");
        }
    }

    // Input layers need a usable shape; nothing derives it for them.
    for (const Layer &layer : layers) {
        if (layer.kind != LayerKind::Input)
            continue;
        bool bad = layer.outShape.empty();
        for (int64_t d : layer.outShape)
            bad = bad || d <= 0;
        if (bad)
            report.add(Severity::Error, "graph.input-shape", layer.id,
                       layer.name,
                       "input shape " + shapeText(layer.outShape) +
                           " is empty or non-positive");
    }
}

void
checkAttributes(const Graph &graph, LintReport &report,
                std::vector<LayerState> &state)
{
    const std::vector<Layer> &layers = graph.layers();
    for (size_t i = 0; i < layers.size(); ++i) {
        const Layer &layer = layers[i];
        const LayerAttrs &a = layer.attrs;
        const size_t before = report.diagnostics().size();
        auto bad = [&](const char *check, const std::string &message) {
            report.add(Severity::Error, check, layer.id, layer.name,
                       message);
        };

        switch (layer.kind) {
          case LayerKind::Conv2d:
            if (a.inChannels <= 0 || a.outChannels <= 0)
                bad("attr.conv.channels",
                    "channel counts must be positive");
            if (a.kernelH <= 0 || a.kernelW <= 0)
                bad("attr.conv.kernel", "kernel must be positive");
            if (a.strideH <= 0 || a.strideW <= 0)
                bad("attr.conv.stride", "stride must be positive");
            if (a.padH < 0 || a.padW < 0)
                bad("attr.conv.pad", "padding must be non-negative");
            if (a.groups <= 0) {
                bad("attr.conv.groups", "groups must be positive");
            } else if (a.inChannels % a.groups != 0 ||
                       a.outChannels % a.groups != 0) {
                bad("attr.conv.groups",
                    "groups=" + std::to_string(a.groups) +
                        " must divide inChannels=" +
                        std::to_string(a.inChannels) +
                        " and outChannels=" +
                        std::to_string(a.outChannels));
            }
            break;
          case LayerKind::Linear:
            if (a.inFeatures <= 0 || a.outFeatures <= 0)
                bad("attr.linear.features",
                    "feature counts must be positive");
            break;
          case LayerKind::AttentionScore:
            if (a.numHeads <= 0) {
                bad("attr.attn.heads", "numHeads must be positive");
            } else if (a.inFeatures <= 0 ||
                       a.inFeatures % a.numHeads != 0) {
                bad("attr.attn.head-div",
                    "numHeads=" + std::to_string(a.numHeads) +
                        " must divide channels=" +
                        std::to_string(a.inFeatures));
            }
            break;
          case LayerKind::AttentionContext:
            if (a.inFeatures <= 0)
                bad("attr.attn.lkv",
                    "inFeatures must record a positive Lkv");
            break;
          case LayerKind::BatchNorm:
            if (a.inChannels <= 0)
                bad("attr.norm.channels",
                    "inChannels must be positive");
            break;
          case LayerKind::LayerNorm:
            if (a.inFeatures <= 0)
                bad("attr.norm.features",
                    "inFeatures must be positive");
            break;
          case LayerKind::MaxPool:
            if (a.kernelH <= 0 || a.kernelW <= 0)
                bad("attr.pool.kernel", "kernel must be positive");
            if (a.strideH <= 0 || a.strideW <= 0)
                bad("attr.pool.stride", "stride must be positive");
            if (a.padH < 0 || a.padW < 0)
                bad("attr.pool.pad", "padding must be non-negative");
            break;
          case LayerKind::AvgPool:
          case LayerKind::Interpolate:
            if (a.outH <= 0 || a.outW <= 0)
                bad("attr.resize.target",
                    "target size must be positive");
            break;
          case LayerKind::Narrow:
            if (a.outChannels <= 0)
                bad("attr.narrow.channels",
                    "kept channel count must be positive");
            break;
          case LayerKind::Patchify:
            if (a.kernelH <= 0)
                bad("attr.patch.size", "patch size must be positive");
            break;
          case LayerKind::TokensToImage:
            if (a.gridH <= 0 || a.gridW <= 0)
                bad("attr.grid.size", "grid must be positive");
            break;
          case LayerKind::WindowPartition:
          case LayerKind::WindowReverse:
            if (a.window <= 0) {
                bad("attr.window.size", "window must be positive");
            } else if (a.gridH <= 0 || a.gridW <= 0) {
                bad("attr.grid.size", "grid must be positive");
            } else if (a.gridH % a.window != 0 ||
                       a.gridW % a.window != 0) {
                bad("attr.window.divisibility",
                    "window=" + std::to_string(a.window) +
                        " must divide grid " +
                        std::to_string(a.gridH) + "x" +
                        std::to_string(a.gridW));
            }
            break;
          case LayerKind::Input:
          case LayerKind::Softmax:
          case LayerKind::ReLU:
          case LayerKind::GELU:
          case LayerKind::Add:
          case LayerKind::Concat:
          case LayerKind::ImageToTokens:
          case LayerKind::Identity:
            break;
        }

        // Pass-framework annotations: a fused epilogue is only
        // meaningful on a Conv2d, and in-place reuse only on the
        // elementwise kinds the executor knows how to run in place.
        if (layer.fused.any()) {
            if (layer.kind != LayerKind::Conv2d)
                bad("attr.fuse.kind",
                    "fused epilogue on non-Conv2d layer");
            if (layer.fused.bn && layer.fused.bnName.empty())
                bad("attr.fuse.bn-name",
                    "fused BatchNorm lost its original layer name "
                    "(weight-store identity)");
            if (layer.fused.activation != LayerKind::Identity &&
                layer.fused.activation != LayerKind::ReLU &&
                layer.fused.activation != LayerKind::GELU)
                bad("attr.fuse.activation",
                    std::string("unsupported fused activation ") +
                        layerKindName(layer.fused.activation));
        }
        if (layer.inplacePriority > 0) {
            switch (layer.kind) {
              case LayerKind::ReLU:
              case LayerKind::GELU:
              case LayerKind::Add:
              case LayerKind::BatchNorm:
                break;
              default:
                bad("attr.inplace.kind",
                    std::string("in-place priority on ") +
                        layerKindName(layer.kind) +
                        ", which the executor cannot run in place");
            }
        }

        if (report.diagnostics().size() != before)
            state[i].attrsOk = false;
    }
}

void
checkShapeFlow(const Graph &graph, LintReport &report,
               const std::vector<LayerState> &state)
{
    const std::vector<Layer> &layers = graph.layers();
    for (size_t i = 0; i < layers.size(); ++i) {
        const Layer &layer = layers[i];
        if (layer.kind == LayerKind::Input || !state[i].edgesOk)
            continue;
        std::vector<Shape> in_shapes;
        in_shapes.reserve(layer.inputs.size());
        for (int in_id : layer.inputs)
            in_shapes.push_back(layers[in_id].outShape);

        Result<Shape> derived = analysis::deriveShape(layer, in_shapes);
        if (!derived) {
            report.add(Severity::Error, "shape.invalid", layer.id,
                       layer.name, derived.status().message());
            continue;
        }
        if (derived.value() != layer.outShape)
            report.add(Severity::Error, "shape.mismatch", layer.id,
                       layer.name,
                       "stored " + shapeText(layer.outShape) +
                           " vs derived " +
                           shapeText(derived.value()));
    }
}

void
checkAccounting(const Graph &graph, LintReport &report,
                const std::vector<LayerState> &state)
{
    const std::vector<Layer> &layers = graph.layers();
    for (size_t i = 0; i < layers.size(); ++i) {
        const Layer &layer = layers[i];
        // Layer::macs()/flops() divide by attrs the attr checks vet;
        // skip layers already flagged there.
        if (!state[i].attrsOk)
            continue;
        const int64_t macs = analysis::deriveMacs(layer);
        if (macs != layer.macs())
            report.add(Severity::Error, "acct.macs", layer.id,
                       layer.name,
                       "reported " + std::to_string(layer.macs()) +
                           " MACs vs derived " + std::to_string(macs));
        const int64_t flops = analysis::deriveFlops(layer);
        if (flops != layer.flops())
            report.add(Severity::Error, "acct.flops", layer.id,
                       layer.name,
                       "reported " + std::to_string(layer.flops()) +
                           " FLOPs vs derived " +
                           std::to_string(flops));
        const int64_t params = analysis::deriveParams(layer);
        if (params != layer.paramCount())
            report.add(Severity::Error, "acct.params", layer.id,
                       layer.name,
                       "reported " +
                           std::to_string(layer.paramCount()) +
                           " params vs derived " +
                           std::to_string(params));
    }
}

} // namespace

LintReport
lintGraph(const Graph &graph, const LintOptions &options)
{
    LintReport report;
    std::vector<LayerState> state(graph.numLayers());

    if (options.structure)
        checkStructure(graph, options, report, state);
    if (options.attributes)
        checkAttributes(graph, report, state);
    if (options.shapes)
        checkShapeFlow(graph, report, state);
    if (options.accounting)
        checkAccounting(graph, report, state);
    if (options.memory)
        analysis::checkMemory(graph, report);

    if (options.suppressions.empty())
        return report;
    LintReport kept;
    for (const Diagnostic &d : report.diagnostics()) {
        bool suppressed = false;
        for (const LintSuppression &s : options.suppressions)
            if (d.check == s.check && !s.layerNameContains.empty() &&
                d.layerName.find(s.layerNameContains) !=
                    std::string::npos) {
                suppressed = true;
                break;
            }
        if (!suppressed)
            kept.add(d);
    }
    return kept;
}

} // namespace vitdyn
