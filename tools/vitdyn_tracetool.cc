/**
 * @file
 * vitdyn_tracetool: offline analysis of the serving stack's
 * observability artifacts.
 *
 * Ingests any mix of:
 *  - Chrome trace-event exports (writeChromeTrace / --trace-out), and
 *  - flight-recorder anomaly dumps (obs/flight_recorder.hh),
 * groups spans by the "req" request id the tracer tags them with, and
 * prints:
 *  - one line per flight dump (trigger, request, detail) so an
 *    anomaly directory reads as an incident log;
 *  - per-request critical paths (--requests N slowest): the span tree
 *    of each request with the dominant child chain marked;
 *  - a per-tenant-class p99 attribution table: where the tail
 *    requests' wall time went (admission / queue / batch assembly /
 *    engine / kernel / pool wait), from the scheduler's
 *    "serve.request" summary events.
 *
 * Usage:
 *   vitdyn_tracetool trace.json flight_*.json
 *   vitdyn_tracetool --requests 3 soak_trace.json
 *
 * Exit status: 0 when every input parsed, 1 when any file is
 * malformed (missing, unparseable, or not a recognized dump shape) —
 * CI runs it over the soak artifacts as a format gate.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"

namespace
{

using vitdyn::JsonValue;
using vitdyn::Result;

/** One span/instant extracted from a trace-event array. */
struct ToolEvent
{
    std::string name;
    std::string category;
    double tsUs = 0.0;
    double durUs = 0.0;
    int tid = 0;
    uint64_t requestId = 0;
    bool instant = false;
    const JsonValue *args = nullptr; ///< Into the parsed document.
};

/** The scheduler's "serve.request" terminal summary, one request. */
struct RequestSummary
{
    uint64_t id = 0;
    std::string tenantClass;
    std::string outcome;
    std::string config;
    double admissionMs = 0.0;
    double queueMs = 0.0;
    double batchMs = 0.0;
    double engineMs = 0.0;
    double kernelMs = 0.0;
    double poolWaitMs = 0.0;
    bool deadlineMiss = false;

    double totalMs() const
    {
        return admissionMs + queueMs + batchMs + engineMs;
    }
};

struct Ingest
{
    std::vector<ToolEvent> events;
    std::map<uint64_t, RequestSummary> summaries;
    size_t traceFiles = 0;
    size_t flightFiles = 0;
};

bool
extractEvents(const JsonValue &trace_doc, Ingest &ingest,
              const std::string &path)
{
    const JsonValue *events = trace_doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "%s: no traceEvents array (not a Chrome trace)\n",
                     path.c_str());
        return false;
    }
    for (const JsonValue &e : events->array()) {
        if (!e.isObject()) {
            std::fprintf(stderr, "%s: non-object trace event\n",
                         path.c_str());
            return false;
        }
        ToolEvent ev;
        ev.name = e.stringOr("name", "");
        ev.category = e.stringOr("cat", "");
        ev.tsUs = e.numberOr("ts", 0.0);
        ev.durUs = e.numberOr("dur", 0.0);
        ev.tid = static_cast<int>(e.numberOr("tid", 0.0));
        ev.instant = e.stringOr("ph", "X") == "i";
        ev.args = e.find("args");
        if (ev.args)
            ev.requestId = static_cast<uint64_t>(
                ev.args->numberOr("req", 0.0));

        if (ev.name == "serve.request" && ev.args) {
            RequestSummary s;
            s.id = ev.requestId;
            s.tenantClass = ev.args->stringOr("class", "unknown");
            s.outcome = ev.args->stringOr("outcome", "unknown");
            s.config = ev.args->stringOr("config", "");
            s.admissionMs = ev.args->numberOr("admission_ms", 0.0);
            s.queueMs = ev.args->numberOr("queue_ms", 0.0);
            s.batchMs = ev.args->numberOr("batch_ms", 0.0);
            s.engineMs = ev.args->numberOr("engine_ms", 0.0);
            s.kernelMs = ev.args->numberOr("kernel_ms", 0.0);
            s.poolWaitMs = ev.args->numberOr("pool_wait_ms", 0.0);
            const JsonValue *miss = ev.args->find("deadline_miss");
            s.deadlineMiss = miss && miss->isBool() && miss->boolean();
            ingest.summaries[s.id] = s;
        }
        ingest.events.push_back(ev);
    }
    return true;
}

/**
 * One input file: flight dump or bare Chrome trace. The parsed
 * document is appended to @p docs and must outlive @p ingest —
 * ToolEvent::args points into it (moving the owning JsonValue on
 * vector growth is fine; children stay on their own heap).
 */
bool
ingestFile(const std::string &path, Ingest &ingest,
           std::vector<JsonValue> &docs)
{
    Result<JsonValue> parsed = vitdyn::parseJsonFile(path);
    if (!parsed) {
        std::fprintf(stderr, "%s\n",
                     parsed.status().message().c_str());
        return false;
    }
    docs.push_back(parsed.take());
    const JsonValue &doc = docs.back();
    if (!doc.isObject()) {
        std::fprintf(stderr, "%s: top level is not an object\n",
                     path.c_str());
        return false;
    }

    if (const JsonValue *header = doc.find("flightRecorder")) {
        if (!header->isObject()) {
            std::fprintf(stderr, "%s: malformed flightRecorder header\n",
                         path.c_str());
            return false;
        }
        const JsonValue *spans = doc.find("spans");
        if (!spans) {
            std::fprintf(stderr, "%s: flight dump without spans\n",
                         path.c_str());
            return false;
        }
        const uint64_t req =
            static_cast<uint64_t>(header->numberOr("request", 0.0));
        std::printf("flight %s: trigger=%s request=%llu spans=%.0f\n"
                    "  detail: %s\n",
                    path.c_str(),
                    header->stringOr("trigger", "?").c_str(),
                    static_cast<unsigned long long>(req),
                    header->numberOr("spanCount", 0.0),
                    header->stringOr("detail", "").c_str());
        ++ingest.flightFiles;
        return extractEvents(*spans, ingest, path);
    }

    ++ingest.traceFiles;
    return extractEvents(doc, ingest, path);
}

/**
 * Print one request's span tree. Nesting is reconstructed from
 * timestamp containment within each tid; at every level the heaviest
 * child (the critical-path edge) is marked with '*'.
 */
void
printRequestTree(uint64_t id, const RequestSummary *summary,
                 std::vector<ToolEvent> spans)
{
    std::printf("request %llu",
                static_cast<unsigned long long>(id));
    if (summary)
        std::printf("  [%s, %s%s, total %.3f ms]",
                    summary->tenantClass.c_str(),
                    summary->outcome.c_str(),
                    summary->deadlineMiss ? ", DEADLINE MISS" : "",
                    summary->totalMs());
    std::printf("\n");

    std::sort(spans.begin(), spans.end(),
              [](const ToolEvent &a, const ToolEvent &b) {
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  return a.durUs > b.durUs;
              });

    // Containment stack per tid; heaviest sibling per (tid, depth).
    std::map<int, std::vector<const ToolEvent *>> open;
    std::map<std::pair<int, size_t>, double> heaviest;
    for (const ToolEvent &e : spans)
        if (!e.instant) {
            auto &stack = open[e.tid];
            while (!stack.empty() &&
                   e.tsUs >= stack.back()->tsUs + stack.back()->durUs)
                stack.pop_back();
            auto key = std::make_pair(e.tid, stack.size());
            heaviest[key] = std::max(heaviest[key], e.durUs);
            stack.push_back(&e);
        }

    open.clear();
    for (const ToolEvent &e : spans) {
        if (e.instant) {
            std::printf("    .       %-10s %s\n", e.category.c_str(),
                        e.name.c_str());
            continue;
        }
        auto &stack = open[e.tid];
        while (!stack.empty() &&
               e.tsUs >= stack.back()->tsUs + stack.back()->durUs)
            stack.pop_back();
        const size_t depth = stack.size();
        const bool critical =
            e.durUs >=
            heaviest[std::make_pair(e.tid, depth)] - 1e-9;
        std::printf("  %c %8.3f %-10s %*s%s\n", critical ? '*' : ' ',
                    e.durUs / 1e3, e.category.c_str(),
                    static_cast<int>(2 * depth), "",
                    e.name.c_str());
        stack.push_back(&e);
    }
}

double
quantileOf(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** Per-class p99 attribution: where the tail's wall time went. */
void
printAttributionTable(const std::map<uint64_t, RequestSummary> &all)
{
    std::map<std::string, std::vector<const RequestSummary *>>
        by_class;
    for (const auto &[id, s] : all)
        by_class[s.tenantClass].push_back(&s);

    std::printf("\nper-class p99 latency attribution (tail = "
                "requests at or above p99 total)\n");
    std::printf("%-12s %6s %9s %9s %7s | %6s %6s %6s %6s %6s %6s\n",
                "class", "n", "p50ms", "p99ms", "miss%", "adm%",
                "queue%", "batch%", "eng%", "kern%", "pool%");
    for (auto &[cls, reqs] : by_class) {
        std::vector<double> totals;
        totals.reserve(reqs.size());
        size_t misses = 0;
        for (const RequestSummary *s : reqs) {
            totals.push_back(s->totalMs());
            misses += s->deadlineMiss ? 1 : 0;
        }
        std::sort(totals.begin(), totals.end());
        const double p50 = quantileOf(totals, 0.50);
        const double p99 = quantileOf(totals, 0.99);

        // Tail shares: average the phase decomposition over every
        // request whose total reaches p99 (>= 1 request by
        // construction).
        double adm = 0, queue = 0, batch = 0, engine = 0, kernel = 0,
               pool = 0, total = 0;
        for (const RequestSummary *s : reqs) {
            if (s->totalMs() < p99)
                continue;
            adm += s->admissionMs;
            queue += s->queueMs;
            batch += s->batchMs;
            engine += s->engineMs - s->kernelMs;
            kernel += s->kernelMs;
            pool += s->poolWaitMs;
            total += s->totalMs();
        }
        const double denom = total > 0.0 ? total : 1.0;
        std::printf("%-12s %6zu %9.3f %9.3f %6.1f%% | %5.1f%% "
                    "%5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    cls.c_str(), reqs.size(), p50, p99,
                    100.0 * static_cast<double>(misses) /
                        static_cast<double>(reqs.size()),
                    100.0 * adm / denom, 100.0 * queue / denom,
                    100.0 * batch / denom, 100.0 * engine / denom,
                    100.0 * kernel / denom, 100.0 * pool / denom);
    }
    if (by_class.empty())
        std::printf("  (no serve.request summaries in the inputs)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    size_t show_requests = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--requests N] <trace.json|flight.json>..."
                "\n\nParses Chrome trace exports and flight-recorder "
                "dumps; prints per-request\ncritical paths (N slowest"
                ", default 5) and a per-class p99 attribution table."
                "\nExits 1 on any malformed input.\n",
                argv[0]);
            return 0;
        }
        if (arg == "--requests") {
            if (i + 1 >= argc)
                vitdyn_fatal("--requests needs a value");
            show_requests =
                static_cast<size_t>(std::atoll(argv[++i]));
            continue;
        }
        if (arg.rfind("--", 0) == 0)
            vitdyn_fatal("unknown option '", arg,
                         "' (see --help)");
        paths.push_back(arg);
    }
    if (paths.empty())
        vitdyn_fatal("no input files (see --help)");

    // Keep every parsed document alive: ToolEvent::args points into
    // them.
    Ingest ingest;
    std::vector<JsonValue> docs;
    docs.reserve(paths.size());
    bool ok = true;
    for (const std::string &path : paths)
        ok = ingestFile(path, ingest, docs) && ok;
    if (!ok)
        return 1;

    std::printf("parsed %zu trace file(s), %zu flight dump(s): "
                "%zu events, %zu request summaries\n",
                ingest.traceFiles, ingest.flightFiles,
                ingest.events.size(), ingest.summaries.size());

    // Slowest requests first (by summary total; requests without a
    // summary are skipped — they have no attribution to rank by).
    std::vector<const RequestSummary *> ranked;
    for (const auto &[id, s] : ingest.summaries)
        ranked.push_back(&s);
    std::sort(ranked.begin(), ranked.end(),
              [](const RequestSummary *a, const RequestSummary *b) {
                  return a->totalMs() > b->totalMs();
              });
    if (ranked.size() > show_requests)
        ranked.resize(show_requests);

    std::map<uint64_t, std::vector<ToolEvent>> by_request;
    for (const ToolEvent &e : ingest.events)
        if (e.requestId != 0)
            by_request[e.requestId].push_back(e);

    if (!ranked.empty())
        std::printf("\n%zu slowest request(s), span tree "
                    "(* = critical path, ms):\n",
                    ranked.size());
    for (const RequestSummary *s : ranked) {
        printRequestTree(s->id, s, by_request[s->id]);
        std::printf("\n");
    }

    printAttributionTable(ingest.summaries);
    return 0;
}
