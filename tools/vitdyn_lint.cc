/**
 * @file
 * vitdyn_lint: run the static-analysis battery (src/analysis/) over
 * every registered model builder and every published Pareto frontier.
 *
 * Usage:
 *   vitdyn_lint                 # lint everything, text report
 *   vitdyn_lint --filter swin   # only targets whose name contains
 *                               # "swin"
 *   vitdyn_lint --csv           # machine-readable findings
 *   vitdyn_lint --strict        # exit nonzero on warnings too
 *   vitdyn_lint --passes        # run the standard rewrite pipeline
 *                               # (graph/passes/) over every builder
 *                               # target instead; each target's
 *                               # suppressions configure the gates
 *   vitdyn_lint --memory        # memory-lint mode: verify the
 *                               # in-place steal plan and report the
 *                               # certified peak-activation bound per
 *                               # target and per frontier config
 *                               # (--csv emits the per-config table;
 *                               # --memory-budget-mb flags configs
 *                               # over a byte budget as errors)
 *
 * Exit status: 0 when no Error findings (no Warning findings either
 * under --strict), 1 otherwise — suitable as a CI gate. Under
 * --passes a pipeline failure on any target exits 1.
 */

#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "analysis/liveness.hh"
#include "analysis/lut_check.hh"
#include "graph/passes/pass.hh"
#include "models/detr.hh"
#include "models/ofa.hh"
#include "models/pvt.hh"
#include "models/resnet.hh"
#include "models/segformer.hh"
#include "models/swin.hh"
#include "models/vit.hh"
#include "resilience/accuracy_model.hh"
#include "resilience/config.hh"
#include "resilience/sweep.hh"
#include "util/args.hh"

namespace
{

using vitdyn::Graph;

/** One named graph to lint. */
struct Target
{
    std::string name;
    std::function<Graph()> build;
    vitdyn::LintOptions lint;
};

std::vector<Target>
builderTargets()
{
    using namespace vitdyn;
    std::vector<Target> targets;
    auto add = [&](std::string name, std::function<Graph()> build) {
        targets.push_back({std::move(name), std::move(build), {}});
    };

    add("segformer_b0", [] { return buildSegformer(segformerB0Config()); });
    add("segformer_b1", [] { return buildSegformer(segformerB1Config()); });
    add("segformer_b2", [] { return buildSegformer(segformerB2Config()); });
    add("segformer_b3", [] { return buildSegformer(segformerB3Config()); });
    add("segformer_b4", [] { return buildSegformer(segformerB4Config()); });
    add("segformer_b5", [] { return buildSegformer(segformerB5Config()); });
    add("segformer_b2_cityscapes",
        [] { return buildSegformer(segformerB2CityscapesConfig()); });

    add("swin_tiny", [] { return buildSwin(swinTinyConfig()); });
    add("swin_small", [] { return buildSwin(swinSmallConfig()); });
    add("swin_base", [] { return buildSwin(swinBaseConfig()); });

    add("resnet50", [] { return buildResnet(ResnetConfig{}); });
    add("resnet50_headless", [] {
        ResnetConfig cfg;
        cfg.headless = true;
        return buildResnet(cfg);
    });

    add("detr", [] { return buildDetr(detrConfig()); });
    add("deformable_detr",
        [] { return buildDeformableDetr(deformableDetrConfig()); });
    // The deformable-attention proxy keeps the real model's
    // sampling-offset / attention-weight projections purely for their
    // MAC contribution — nothing consumes them by construction.
    targets.back().lint.suppressions = {
        {"graph.unreachable", "sampling_offsets"},
        {"graph.unreachable", "attention_weights"},
    };

    add("vit_b16", [] { return buildVit(vitB16Config()); });
    add("vit_l16", [] { return buildVit(vitL16Config()); });
    add("bert_base", [] { return buildBert(BertConfig{}); });

    add("pvt_tiny", [] { return buildPvt(pvtTinyConfig()); });
    add("pvt_small", [] { return buildPvt(pvtSmallConfig()); });

    for (const OfaSubnet &subnet : ofaResnet50Catalog()) {
        ResnetConfig cfg = subnet.config;
        add("ofa_" + subnet.name,
            [cfg] { return buildResnet(cfg); });
    }
    return targets;
}

/** One published frontier: swept into a LUT, then cross-checked. */
struct FrontierTarget
{
    std::string name;
    std::function<vitdyn::LintReport()> check;
};

std::vector<FrontierTarget>
frontierTargets()
{
    using namespace vitdyn;
    const GraphCostFn flops = [](const Graph &g) {
        return static_cast<double>(g.totalFlops());
    };

    std::vector<FrontierTarget> targets;
    auto add_segformer = [&](std::string name, SegformerConfig base,
                             std::vector<PruneConfig> catalog,
                             PrunedModelKind kind) {
        targets.push_back(
            {std::move(name),
             [base, catalog = std::move(catalog), kind, flops] {
                 AccuracyModel accuracy(kind);
                 AccuracyResourceLut lut(
                     sweepSegformer(base, catalog, accuracy, flops),
                     "flops");
                 LutCheckOptions options;
                 options.cost = flops;
                 return checkLut(lut, ModelFamily::Segformer, base,
                                 SwinConfig{}, options);
             }});
    };
    auto add_swin = [&](std::string name, SwinConfig base,
                        std::vector<PruneConfig> catalog,
                        PrunedModelKind kind) {
        targets.push_back(
            {std::move(name),
             [base, catalog = std::move(catalog), kind, flops] {
                 AccuracyModel accuracy(kind);
                 AccuracyResourceLut lut(
                     sweepSwin(base, catalog, accuracy, flops),
                     "flops");
                 LutCheckOptions options;
                 options.cost = flops;
                 return checkLut(lut, ModelFamily::Swin,
                                 SegformerConfig{}, base, options);
             }});
    };

    add_segformer("frontier_segformer_b2_ade", segformerB2Config(),
                  segformerAdePruneCatalog(),
                  PrunedModelKind::SegformerB2Ade);
    add_segformer("frontier_segformer_b2_cityscapes",
                  segformerB2CityscapesConfig(),
                  segformerCityscapesPruneCatalog(),
                  PrunedModelKind::SegformerB2Cityscapes);
    add_swin("frontier_swin_base", swinBaseConfig(),
             swinBasePruneCatalog(), PrunedModelKind::SwinBaseAde);
    add_swin("frontier_swin_tiny", swinTinyConfig(),
             swinTinyPruneCatalog(), PrunedModelKind::SwinTinyAde);
    return targets;
}

bool
matches(const std::string &name, const std::string &filter)
{
    return filter.empty() || name.find(filter) != std::string::npos;
}

/** One graph's worth of memory-lint results (see runMemoryMode). */
struct MemoryRow
{
    std::string config; ///< Frontier config label; "-" for builders.
    size_t layers = 0;
    /** Plan of the graph as built/pruned — the bound the engine's
     *  load-time gate certifies. */
    vitdyn::analysis::MemoryPlan plan;
    /** Plan after the standard rewrite pipeline (fusion + verified
     *  in-place annotations) — what a serving path actually needs. */
    vitdyn::analysis::MemoryPlan fused;
    /** mem.* findings on the rewritten (annotated) graph. */
    vitdyn::LintReport report;
};

/** A named family of graphs to memory-lint, one row per config. */
struct MemoryTarget
{
    std::string name;
    std::function<std::vector<MemoryRow>()> rows;
};

MemoryRow
memoryRow(std::string config_label, Graph graph,
          const vitdyn::LintOptions &lint)
{
    using namespace vitdyn;
    MemoryRow row;
    row.config = std::move(config_label);
    row.layers = graph.numLayers();
    row.plan = analysis::planMemory(graph);

    PassOptions options;
    options.lint = lint;
    PassManager pipeline = PassManager::standardPipeline(options);
    Result<PipelineReport> outcome = pipeline.run(graph);
    // The pipeline is transactional: on failure the graph holds the
    // last lint-clean state, which is still meaningful to plan.
    if (!outcome)
        row.report.addGraph(Severity::Error, "mem.pipeline",
                            outcome.status().message());
    row.fused = analysis::planMemory(graph);

    // Re-verify the rewritten graph's annotations with the memory
    // family alone (the pipeline gates already ran the full battery).
    LintOptions memory_only = lint;
    memory_only.structure = false;
    memory_only.attributes = false;
    memory_only.shapes = false;
    memory_only.accounting = false;
    memory_only.memory = true;
    row.report.merge(lintGraph(graph, memory_only));
    return row;
}

std::vector<MemoryTarget>
memoryTargets()
{
    using namespace vitdyn;
    std::vector<MemoryTarget> targets;

    for (const Target &builder : builderTargets())
        targets.push_back(
            {builder.name, [builder] {
                 return std::vector<MemoryRow>{
                     memoryRow("-", builder.build(), builder.lint)};
             }});

    // Frontier targets: one row per catalog config's pruned graph
    // (accuracy/cost sweeping is the default mode's concern; memory
    // only needs the graphs).
    auto add_frontier = [&](std::string name, ModelFamily family,
                            SegformerConfig seg_base, SwinConfig swin_base,
                            std::vector<PruneConfig> catalog) {
        targets.push_back(
            {std::move(name),
             [family, seg_base, swin_base,
              catalog = std::move(catalog)] {
                 std::vector<MemoryRow> rows;
                 for (const PruneConfig &config : catalog) {
                     Result<Graph> built = tryApplyPrune(
                         family, seg_base, swin_base, config);
                     if (!built) {
                         MemoryRow row;
                         row.config = config.label;
                         row.report.addGraph(Severity::Error,
                                             "mem.config",
                                             built.status().message());
                         rows.push_back(std::move(row));
                         continue;
                     }
                     rows.push_back(memoryRow(
                         config.label, std::move(built.value()), {}));
                 }
                 return rows;
             }});
    };

    add_frontier("frontier_segformer_b2_ade", ModelFamily::Segformer,
                 segformerB2Config(), SwinConfig{},
                 segformerAdePruneCatalog());
    add_frontier("frontier_segformer_b2_cityscapes",
                 ModelFamily::Segformer, segformerB2CityscapesConfig(),
                 SwinConfig{}, segformerCityscapesPruneCatalog());
    add_frontier("frontier_swin_base", ModelFamily::Swin,
                 SegformerConfig{}, swinBaseConfig(),
                 swinBasePruneCatalog());
    add_frontier("frontier_swin_tiny", ModelFamily::Swin,
                 SegformerConfig{}, swinTinyConfig(),
                 swinTinyPruneCatalog());
    return targets;
}

std::string
mib(size_t bytes)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2)
        << static_cast<double>(bytes) / (1024.0 * 1024.0);
    return oss.str();
}

/**
 * --memory mode: verify the in-place steal plan and report certified
 * peak-activation bounds for every builder graph and every frontier
 * config. --csv emits one row per (target, config); a nonzero
 * --memory-budget-mb turns any config whose certified bound exceeds
 * it into an Error, mirroring the engine's load-time veto.
 */
int
runMemoryMode(const std::string &filter, bool strict, bool csv,
              double budget_mb)
{
    using namespace vitdyn;

    const size_t budget_bytes =
        budget_mb > 0.0
            ? static_cast<size_t>(budget_mb * 1024.0 * 1024.0)
            : 0;
    LintReport all;
    size_t checked = 0;
    std::ostringstream table;
    table << "target,config,layers,total_bytes,max_live_bytes,"
             "certified_peak_bytes,fused_certified_peak_bytes,"
             "fused_planned_peak_bytes,steal_saved_bytes\n";

    for (const MemoryTarget &target : memoryTargets()) {
        if (!matches(target.name, filter))
            continue;
        std::vector<MemoryRow> rows = target.rows();
        ++checked;
        size_t worst_certified = 0;
        size_t worst_fused = 0;
        bool ok = true;
        for (MemoryRow &row : rows) {
            worst_certified =
                std::max(worst_certified, row.plan.certifiedPeakBytes);
            worst_fused =
                std::max(worst_fused, row.fused.certifiedPeakBytes);
            if (budget_bytes > 0 &&
                row.plan.certifiedPeakBytes > budget_bytes)
                row.report.addGraph(
                    Severity::Error, "mem.budget",
                    "certified peak " +
                        std::to_string(row.plan.certifiedPeakBytes) +
                        " bytes exceeds the budget of " +
                        std::to_string(budget_bytes) + " bytes");
            ok = ok && !row.report.hasErrors() &&
                 (!strict || row.report.clean());
            all.mergeWithContext(row.report,
                                 target.name + " '" + row.config + "'");
            table << target.name << ',' << row.config << ','
                  << row.layers << ',' << row.plan.totalBytes << ','
                  << row.plan.maxLiveBytes << ','
                  << row.plan.certifiedPeakBytes << ','
                  << row.fused.certifiedPeakBytes << ','
                  << row.fused.plannedPeakBytes << ','
                  << row.fused.stealSavedBytes << "\n";
        }
        if (!csv)
            std::cout << (ok ? "ok   " : "FAIL ") << target.name
                      << " (" << rows.size() << " config(s), certified "
                      << mib(worst_certified) << " MiB, fused "
                      << mib(worst_fused) << " MiB)\n";
    }

    if (csv) {
        std::cout << table.str();
        if (!all.diagnostics().empty())
            std::cerr << all.toText();
    } else {
        if (!all.diagnostics().empty())
            std::cout << "\n" << all.toText();
        std::cout << "\n"
                  << checked << " target(s) memory-checked: "
                  << all.count(Severity::Error) << " error(s), "
                  << all.count(Severity::Warning) << " warning(s), "
                  << all.count(Severity::Info) << " note(s)\n";
    }

    if (all.hasErrors())
        return 1;
    if (strict && !all.clean())
        return 1;
    return 0;
}

/**
 * --passes mode: run the standard rewrite pipeline over every builder
 * target. The PassManager's own gates prove each target lints clean
 * before and after every rewriting pass; this reports per-target
 * rewrite counts and layer/GFLOP movement. Frontier targets are LUT
 * sweeps, not single graphs, so they are out of scope here.
 */
int
runPassesMode(const std::string &filter, bool strict)
{
    using namespace vitdyn;

    size_t checked = 0;
    size_t failed = 0;
    for (const Target &target : builderTargets()) {
        if (!matches(target.name, filter))
            continue;
        Graph graph = target.build();
        const size_t layers_before = graph.numLayers();
        const double gflops_before = graph.totalFlops() / 1.0e9;

        PassOptions options;
        options.lint = target.lint;
        PassManager pipeline = PassManager::standardPipeline(options);
        Result<PipelineReport> outcome = pipeline.run(graph);
        ++checked;
        if (!outcome) {
            ++failed;
            std::cout << "FAIL " << target.name << ": "
                      << outcome.status().message() << "\n";
            continue;
        }
        const PipelineReport &report = outcome.value();
        std::cout << "ok   " << target.name << " ("
                  << report.totalRewrites() << " rewrites, layers "
                  << layers_before << " -> " << graph.numLayers()
                  << ", " << gflops_before << " -> "
                  << graph.totalFlops() / 1.0e9 << " GFLOPs)\n";
        // The pipeline already gated each pass; under --strict insist
        // the final graph has no warnings either.
        if (strict) {
            LintReport after = lintGraph(graph, target.lint);
            if (!after.clean()) {
                ++failed;
                std::cout << after.toText();
            }
        }
    }
    std::cout << "\n"
              << checked << " target(s) rewritten, " << failed
              << " failure(s)\n";
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vitdyn;

    ArgParser args;
    args.addOption("filter", "",
                   "only lint targets whose name contains this");
    args.addFlag("csv", "emit findings as CSV instead of text");
    args.addFlag("strict", "exit nonzero on warnings too");
    args.addFlag("passes",
                 "run the rewrite pass pipeline over builder targets");
    args.addFlag("memory",
                 "verify the in-place plan and report certified "
                 "peak-activation bounds per target/config");
    args.addOption("memory-budget-mb", "0",
                   "with --memory: flag configs whose certified peak "
                   "exceeds this many MiB as errors (0 = report only)");
    args.parse(argc, argv);

    const std::string filter = args.get("filter");
    const bool csv = args.getFlag("csv");

    if (args.getFlag("passes"))
        return runPassesMode(filter, args.getFlag("strict"));
    if (args.getFlag("memory"))
        return runMemoryMode(filter, args.getFlag("strict"), csv,
                             std::stod(args.get("memory-budget-mb")));

    LintReport all;
    size_t checked = 0;

    for (const Target &target : builderTargets()) {
        if (!matches(target.name, filter))
            continue;
        Graph graph = target.build();
        LintReport report = lintGraph(graph, target.lint);
        ++checked;
        if (!csv)
            std::cout << (report.clean() ? "ok   " : "FAIL ")
                      << target.name << " (" << graph.numLayers()
                      << " layers, " << graph.totalFlops() / 1.0e9
                      << " GFLOPs)\n";
        all.mergeWithContext(report, target.name);
    }

    for (const FrontierTarget &target : frontierTargets()) {
        if (!matches(target.name, filter))
            continue;
        LintReport report = target.check();
        ++checked;
        if (!csv)
            std::cout << (report.clean() ? "ok   " : "FAIL ")
                      << target.name << "\n";
        all.mergeWithContext(report, target.name);
    }

    if (csv) {
        std::cout << all.toCsv();
    } else {
        if (!all.diagnostics().empty())
            std::cout << "\n" << all.toText();
        std::cout << "\n"
                  << checked << " target(s) checked: "
                  << all.count(Severity::Error) << " error(s), "
                  << all.count(Severity::Warning) << " warning(s), "
                  << all.count(Severity::Info) << " note(s)\n";
    }

    if (all.hasErrors())
        return 1;
    if (args.getFlag("strict") && !all.clean())
        return 1;
    return 0;
}
