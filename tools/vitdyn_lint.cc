/**
 * @file
 * vitdyn_lint: run the static-analysis battery (src/analysis/) over
 * every registered model builder and every published Pareto frontier.
 *
 * Usage:
 *   vitdyn_lint                 # lint everything, text report
 *   vitdyn_lint --filter swin   # only targets whose name contains
 *                               # "swin"
 *   vitdyn_lint --csv           # machine-readable findings
 *   vitdyn_lint --strict        # exit nonzero on warnings too
 *   vitdyn_lint --passes        # run the standard rewrite pipeline
 *                               # (graph/passes/) over every builder
 *                               # target instead; each target's
 *                               # suppressions configure the gates
 *
 * Exit status: 0 when no Error findings (no Warning findings either
 * under --strict), 1 otherwise — suitable as a CI gate. Under
 * --passes a pipeline failure on any target exits 1.
 */

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "analysis/lut_check.hh"
#include "graph/passes/pass.hh"
#include "models/detr.hh"
#include "models/ofa.hh"
#include "models/pvt.hh"
#include "models/resnet.hh"
#include "models/segformer.hh"
#include "models/swin.hh"
#include "models/vit.hh"
#include "resilience/accuracy_model.hh"
#include "resilience/config.hh"
#include "resilience/sweep.hh"
#include "util/args.hh"

namespace
{

using vitdyn::Graph;

/** One named graph to lint. */
struct Target
{
    std::string name;
    std::function<Graph()> build;
    vitdyn::LintOptions lint;
};

std::vector<Target>
builderTargets()
{
    using namespace vitdyn;
    std::vector<Target> targets;
    auto add = [&](std::string name, std::function<Graph()> build) {
        targets.push_back({std::move(name), std::move(build), {}});
    };

    add("segformer_b0", [] { return buildSegformer(segformerB0Config()); });
    add("segformer_b1", [] { return buildSegformer(segformerB1Config()); });
    add("segformer_b2", [] { return buildSegformer(segformerB2Config()); });
    add("segformer_b3", [] { return buildSegformer(segformerB3Config()); });
    add("segformer_b4", [] { return buildSegformer(segformerB4Config()); });
    add("segformer_b5", [] { return buildSegformer(segformerB5Config()); });
    add("segformer_b2_cityscapes",
        [] { return buildSegformer(segformerB2CityscapesConfig()); });

    add("swin_tiny", [] { return buildSwin(swinTinyConfig()); });
    add("swin_small", [] { return buildSwin(swinSmallConfig()); });
    add("swin_base", [] { return buildSwin(swinBaseConfig()); });

    add("resnet50", [] { return buildResnet(ResnetConfig{}); });
    add("resnet50_headless", [] {
        ResnetConfig cfg;
        cfg.headless = true;
        return buildResnet(cfg);
    });

    add("detr", [] { return buildDetr(detrConfig()); });
    add("deformable_detr",
        [] { return buildDeformableDetr(deformableDetrConfig()); });
    // The deformable-attention proxy keeps the real model's
    // sampling-offset / attention-weight projections purely for their
    // MAC contribution — nothing consumes them by construction.
    targets.back().lint.suppressions = {
        {"graph.unreachable", "sampling_offsets"},
        {"graph.unreachable", "attention_weights"},
    };

    add("vit_b16", [] { return buildVit(vitB16Config()); });
    add("vit_l16", [] { return buildVit(vitL16Config()); });
    add("bert_base", [] { return buildBert(BertConfig{}); });

    add("pvt_tiny", [] { return buildPvt(pvtTinyConfig()); });
    add("pvt_small", [] { return buildPvt(pvtSmallConfig()); });

    for (const OfaSubnet &subnet : ofaResnet50Catalog()) {
        ResnetConfig cfg = subnet.config;
        add("ofa_" + subnet.name,
            [cfg] { return buildResnet(cfg); });
    }
    return targets;
}

/** One published frontier: swept into a LUT, then cross-checked. */
struct FrontierTarget
{
    std::string name;
    std::function<vitdyn::LintReport()> check;
};

std::vector<FrontierTarget>
frontierTargets()
{
    using namespace vitdyn;
    const GraphCostFn flops = [](const Graph &g) {
        return static_cast<double>(g.totalFlops());
    };

    std::vector<FrontierTarget> targets;
    auto add_segformer = [&](std::string name, SegformerConfig base,
                             std::vector<PruneConfig> catalog,
                             PrunedModelKind kind) {
        targets.push_back(
            {std::move(name),
             [base, catalog = std::move(catalog), kind, flops] {
                 AccuracyModel accuracy(kind);
                 AccuracyResourceLut lut(
                     sweepSegformer(base, catalog, accuracy, flops),
                     "flops");
                 LutCheckOptions options;
                 options.cost = flops;
                 return checkLut(lut, ModelFamily::Segformer, base,
                                 SwinConfig{}, options);
             }});
    };
    auto add_swin = [&](std::string name, SwinConfig base,
                        std::vector<PruneConfig> catalog,
                        PrunedModelKind kind) {
        targets.push_back(
            {std::move(name),
             [base, catalog = std::move(catalog), kind, flops] {
                 AccuracyModel accuracy(kind);
                 AccuracyResourceLut lut(
                     sweepSwin(base, catalog, accuracy, flops),
                     "flops");
                 LutCheckOptions options;
                 options.cost = flops;
                 return checkLut(lut, ModelFamily::Swin,
                                 SegformerConfig{}, base, options);
             }});
    };

    add_segformer("frontier_segformer_b2_ade", segformerB2Config(),
                  segformerAdePruneCatalog(),
                  PrunedModelKind::SegformerB2Ade);
    add_segformer("frontier_segformer_b2_cityscapes",
                  segformerB2CityscapesConfig(),
                  segformerCityscapesPruneCatalog(),
                  PrunedModelKind::SegformerB2Cityscapes);
    add_swin("frontier_swin_base", swinBaseConfig(),
             swinBasePruneCatalog(), PrunedModelKind::SwinBaseAde);
    add_swin("frontier_swin_tiny", swinTinyConfig(),
             swinTinyPruneCatalog(), PrunedModelKind::SwinTinyAde);
    return targets;
}

bool
matches(const std::string &name, const std::string &filter)
{
    return filter.empty() || name.find(filter) != std::string::npos;
}

/**
 * --passes mode: run the standard rewrite pipeline over every builder
 * target. The PassManager's own gates prove each target lints clean
 * before and after every rewriting pass; this reports per-target
 * rewrite counts and layer/GFLOP movement. Frontier targets are LUT
 * sweeps, not single graphs, so they are out of scope here.
 */
int
runPassesMode(const std::string &filter, bool strict)
{
    using namespace vitdyn;

    size_t checked = 0;
    size_t failed = 0;
    for (const Target &target : builderTargets()) {
        if (!matches(target.name, filter))
            continue;
        Graph graph = target.build();
        const size_t layers_before = graph.numLayers();
        const double gflops_before = graph.totalFlops() / 1.0e9;

        PassOptions options;
        options.lint = target.lint;
        PassManager pipeline = PassManager::standardPipeline(options);
        Result<PipelineReport> outcome = pipeline.run(graph);
        ++checked;
        if (!outcome) {
            ++failed;
            std::cout << "FAIL " << target.name << ": "
                      << outcome.status().message() << "\n";
            continue;
        }
        const PipelineReport &report = outcome.value();
        std::cout << "ok   " << target.name << " ("
                  << report.totalRewrites() << " rewrites, layers "
                  << layers_before << " -> " << graph.numLayers()
                  << ", " << gflops_before << " -> "
                  << graph.totalFlops() / 1.0e9 << " GFLOPs)\n";
        // The pipeline already gated each pass; under --strict insist
        // the final graph has no warnings either.
        if (strict) {
            LintReport after = lintGraph(graph, target.lint);
            if (!after.clean()) {
                ++failed;
                std::cout << after.toText();
            }
        }
    }
    std::cout << "\n"
              << checked << " target(s) rewritten, " << failed
              << " failure(s)\n";
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vitdyn;

    ArgParser args;
    args.addOption("filter", "",
                   "only lint targets whose name contains this");
    args.addFlag("csv", "emit findings as CSV instead of text");
    args.addFlag("strict", "exit nonzero on warnings too");
    args.addFlag("passes",
                 "run the rewrite pass pipeline over builder targets");
    args.parse(argc, argv);

    const std::string filter = args.get("filter");
    const bool csv = args.getFlag("csv");

    if (args.getFlag("passes"))
        return runPassesMode(filter, args.getFlag("strict"));

    LintReport all;
    size_t checked = 0;

    for (const Target &target : builderTargets()) {
        if (!matches(target.name, filter))
            continue;
        Graph graph = target.build();
        LintReport report = lintGraph(graph, target.lint);
        ++checked;
        if (!csv)
            std::cout << (report.clean() ? "ok   " : "FAIL ")
                      << target.name << " (" << graph.numLayers()
                      << " layers, " << graph.totalFlops() / 1.0e9
                      << " GFLOPs)\n";
        all.mergeWithContext(report, target.name);
    }

    for (const FrontierTarget &target : frontierTargets()) {
        if (!matches(target.name, filter))
            continue;
        LintReport report = target.check();
        ++checked;
        if (!csv)
            std::cout << (report.clean() ? "ok   " : "FAIL ")
                      << target.name << "\n";
        all.mergeWithContext(report, target.name);
    }

    if (csv) {
        std::cout << all.toCsv();
    } else {
        if (!all.diagnostics().empty())
            std::cout << "\n" << all.toText();
        std::cout << "\n"
                  << checked << " target(s) checked: "
                  << all.count(Severity::Error) << " error(s), "
                  << all.count(Severity::Warning) << " warning(s), "
                  << all.count(Severity::Info) << " note(s)\n";
    }

    if (all.hasErrors())
        return 1;
    if (args.getFlag("strict") && !all.clean())
        return 1;
    return 0;
}
