/** @file Tests of the fault-injection subsystem and the DRT engine's
 * graceful degradation: deterministic corruption, health checks,
 * quarantine, fallback to the next Pareto entry, and recovery after
 * probation. */

#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.hh"
#include "engine/trace.hh"
#include "fault/fault.hh"
#include "graph/executor.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

Tensor
rampTensor(const Shape &shape)
{
    Tensor t(shape);
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = 0.01f * static_cast<float>(i % 997) - 2.0f;
    return t;
}

// --- FaultInjector -------------------------------------------------

TEST(FaultInjector, DeterministicAcrossInstances)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.specs.push_back({FaultKind::Transient, "*", 0.5, 3, 1e6});
    plan.specs.push_back({FaultKind::BitFlip, "conv", 0.5, 2, 0.0});

    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 20; ++i) {
        Tensor ta = rampTensor({2, 8, 4, 4});
        Tensor tb = rampTensor({2, 8, 4, 4});
        const size_t fa = a.corruptActivation("conv" + std::to_string(i),
                                              ta);
        const size_t fb = b.corruptActivation("conv" + std::to_string(i),
                                              tb);
        EXPECT_EQ(fa, fb);
        for (int64_t j = 0; j < ta.numel(); ++j) {
            if (std::isnan(ta[j]))
                EXPECT_TRUE(std::isnan(tb[j]));
            else
                EXPECT_EQ(ta[j], tb[j]) << "element " << j;
        }
    }
    EXPECT_EQ(a.faultsFired(), b.faultsFired());
    EXPECT_GT(a.faultsFired(), 0u);
}

TEST(FaultInjector, ResetReplaysTheSameStream)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.specs.push_back({FaultKind::NaNPoison, "*", 0.3, 1, 0.0});

    FaultInjector inj(plan);
    std::vector<size_t> first;
    for (int i = 0; i < 30; ++i) {
        Tensor t = rampTensor({16});
        first.push_back(inj.corruptActivation("layer", t));
    }
    inj.reset();
    for (int i = 0; i < 30; ++i) {
        Tensor t = rampTensor({16});
        EXPECT_EQ(inj.corruptActivation("layer", t), first[i]);
    }
}

TEST(FaultInjector, RateZeroNeverFires)
{
    FaultPlan plan;
    plan.specs.push_back({FaultKind::NaNPoison, "*", 0.0, 1, 0.0});
    FaultInjector inj(plan);
    for (int i = 0; i < 50; ++i) {
        Tensor t = rampTensor({64});
        EXPECT_EQ(inj.corruptActivation("anything", t), 0u);
    }
    EXPECT_EQ(inj.faultsFired(), 0u);
}

TEST(FaultInjector, PatternTargetsOnlyMatchingLayers)
{
    FaultPlan plan;
    plan.specs.push_back({FaultKind::NaNPoison, "decoder", 1.0, 4, 0.0});
    FaultInjector inj(plan);

    Tensor hit = rampTensor({32});
    Tensor miss = rampTensor({32});
    EXPECT_EQ(inj.corruptActivation("decoder.fuse", hit), 1u);
    EXPECT_EQ(inj.corruptActivation("encoder.block0", miss), 0u);

    bool has_nan = false;
    for (int64_t i = 0; i < hit.numel(); ++i)
        has_nan |= std::isnan(hit[i]);
    EXPECT_TRUE(has_nan);
    for (int64_t i = 0; i < miss.numel(); ++i)
        EXPECT_FALSE(std::isnan(miss[i]));
}

TEST(FaultInjector, BitFlipStaysInInt8Domain)
{
    // A bit flip through the quant domain perturbs few elements, each
    // by at most 255 quantization steps, and never produces NaN/Inf.
    FaultPlan plan;
    plan.seed = 5;
    plan.specs.push_back({FaultKind::BitFlip, "*", 1.0, 2, 0.0});
    FaultInjector inj(plan);

    Tensor t = rampTensor({4, 16});
    Tensor orig = t;
    EXPECT_EQ(inj.corruptWeights("w", t), 1u);

    const float scale = orig.maxAbs() / 127.0f;
    int64_t changed = 0;
    for (int64_t i = 0; i < t.numel(); ++i) {
        ASSERT_TRUE(std::isfinite(t[i]));
        if (t[i] != orig[i]) {
            ++changed;
            // The flipped value is a dequantized int8: within scale*128.
            EXPECT_LE(std::fabs(t[i]), scale * 128.0f + 1e-4f);
        }
    }
    EXPECT_GE(changed, 1);
    EXPECT_LE(changed, 2);
}

TEST(FaultInjector, StuckChannelZeroesExactlyOneChannel)
{
    FaultPlan plan;
    plan.seed = 11;
    plan.specs.push_back({FaultKind::StuckChannel, "*", 1.0, 1, 0.0});
    FaultInjector inj(plan);

    Tensor t({2, 6, 3, 3}, 1.5f);
    EXPECT_EQ(inj.corruptActivation("conv", t), 1u);

    int zero_channels = 0;
    for (int64_t c = 0; c < 6; ++c) {
        bool all_zero = true;
        for (int64_t n = 0; n < 2; ++n)
            for (int64_t h = 0; h < 3; ++h)
                for (int64_t w = 0; w < 3; ++w)
                    all_zero &= t.at4(n, c, h, w) == 0.0f;
        zero_channels += all_zero;
    }
    EXPECT_EQ(zero_channels, 1);
}

TEST(FaultPlan, CsvRoundTrip)
{
    FaultPlan plan;
    plan.seed = 1234;
    plan.specs.push_back({FaultKind::Transient, "*", 0.01, 4, 64.0});
    plan.specs.push_back({FaultKind::NaNPoison, "Conv2DFuse", 0.5, 1,
                          0.0});
    plan.specs.push_back({FaultKind::StuckChannel, "stage3", 0.25, 1,
                          0.0});

    Result<FaultPlan> loaded = FaultPlan::fromCsv(plan.toCsv());
    ASSERT_TRUE(loaded.isOk()) << loaded.status().message();
    EXPECT_EQ(loaded.value().seed, plan.seed);
    ASSERT_EQ(loaded.value().specs.size(), plan.specs.size());
    for (size_t i = 0; i < plan.specs.size(); ++i) {
        EXPECT_EQ(loaded.value().specs[i].kind, plan.specs[i].kind);
        EXPECT_EQ(loaded.value().specs[i].layerPattern,
                  plan.specs[i].layerPattern);
        EXPECT_DOUBLE_EQ(loaded.value().specs[i].rate,
                         plan.specs[i].rate);
        EXPECT_EQ(loaded.value().specs[i].count, plan.specs[i].count);
    }
    EXPECT_EQ(loaded.value().toCsv(), plan.toCsv());
}

TEST(FaultPlan, MalformedCsvIsRecoverable)
{
    EXPECT_FALSE(FaultPlan::fromCsv("").isOk());
    EXPECT_FALSE(FaultPlan::fromCsv("nonsense").isOk());
    EXPECT_FALSE(
        FaultPlan::fromCsv("seed,1\nkind,pattern,rate,count,magnitude\n"
                           "badkind,*,0.5,1,1\n")
            .isOk());
    EXPECT_FALSE(
        FaultPlan::fromCsv("seed,1\nkind,pattern,rate,count,magnitude\n"
                           "nan,*,2.0,1,1\n")
            .isOk()); // rate > 1
    EXPECT_FALSE(
        FaultPlan::fromCsv("seed,1\nkind,pattern,rate,count,magnitude\n"
                           "nan,*,0.5\n")
            .isOk()); // truncated row
}

// --- Executor health checks ---------------------------------------

Graph
smallGraph()
{
    Graph g("health_test");
    int in = g.addInput("x", {1, 4, 8, 8});
    Layer conv;
    conv.name = "conv_a";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 4;
    conv.inputs = {in};
    int mid = g.addLayer(std::move(conv));
    Layer act;
    act.name = "relu_a";
    act.kind = LayerKind::ReLU;
    act.inputs = {mid};
    g.markOutput(g.addLayer(std::move(act)));
    return g;
}

TEST(ExecutorHealth, CleanRunPassesChecks)
{
    Graph g = smallGraph();
    Executor exec(g, 1);
    HealthCheckConfig cfg;
    cfg.enabled = true;
    cfg.exhaustive = true;
    exec.setHealthChecks(cfg);

    Rng rng(3);
    exec.runSimple(Tensor::randn({1, 4, 8, 8}, rng));
    const HealthReport &report = exec.lastHealthReport();
    EXPECT_TRUE(report.healthy);
    EXPECT_EQ(report.issues.size(), 0u);
    EXPECT_EQ(report.layersChecked, 2u);
    EXPECT_GT(report.elementsChecked, 0u);
    EXPECT_EQ(report.summary(), "healthy");
}

TEST(ExecutorHealth, ExhaustiveModeCatchesSingleNaN)
{
    Graph g = smallGraph();
    Executor exec(g, 1);
    HealthCheckConfig cfg;
    cfg.enabled = true;
    cfg.exhaustive = true;
    exec.setHealthChecks(cfg);

    // Poison exactly one element of the conv output via the hook.
    exec.setPostLayerHook([](const Layer &layer, Tensor &out) {
        if (layer.name == "conv_a")
            out[7] = std::numeric_limits<float>::quiet_NaN();
    });

    Rng rng(3);
    exec.runSimple(Tensor::randn({1, 4, 8, 8}, rng));
    const HealthReport &report = exec.lastHealthReport();
    EXPECT_FALSE(report.healthy);
    ASSERT_GE(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].layer, "conv_a");
    EXPECT_GE(report.issues[0].nanCount, 1);
    EXPECT_NE(report.summary().find("conv_a"), std::string::npos);
}

TEST(ExecutorHealth, SampledModeCatchesWidespreadCorruption)
{
    Graph g = smallGraph();
    Executor exec(g, 1);
    HealthCheckConfig cfg;
    cfg.enabled = true;
    cfg.exhaustive = false;
    cfg.sampleStride = 7;
    exec.setHealthChecks(cfg);

    exec.setPostLayerHook([](const Layer &layer, Tensor &out) {
        if (layer.name == "conv_a")
            for (int64_t i = 0; i < out.numel(); ++i)
                out[i] = std::numeric_limits<float>::infinity();
    });

    Rng rng(3);
    exec.runSimple(Tensor::randn({1, 4, 8, 8}, rng));
    EXPECT_FALSE(exec.lastHealthReport().healthy);
}

TEST(ExecutorHealth, RangeLimitFlagsBlowups)
{
    Graph g = smallGraph();
    Executor exec(g, 1);
    HealthCheckConfig cfg;
    cfg.enabled = true;
    cfg.exhaustive = true;
    cfg.absLimit = 100.0f;
    exec.setHealthChecks(cfg);

    exec.setPostLayerHook([](const Layer &layer, Tensor &out) {
        if (layer.name == "conv_a")
            out[0] = 5000.0f;
    });

    Rng rng(3);
    exec.runSimple(Tensor::randn({1, 4, 8, 8}, rng));
    const HealthReport &report = exec.lastHealthReport();
    EXPECT_FALSE(report.healthy);
    ASSERT_GE(report.issues.size(), 1u);
    EXPECT_GE(report.issues[0].rangeCount, 1);
}

TEST(ExecutorHealth, MutateWeightsTargetsNamedLayer)
{
    Graph g = smallGraph();
    Executor exec(g, 1);
    EXPECT_FALSE(exec.mutateWeights("no_such_layer", [](Tensor &) {}));
    EXPECT_FALSE(exec.mutateWeights("relu_a", [](Tensor &) {}));

    Rng rng(3);
    Tensor input = Tensor::randn({1, 4, 8, 8}, rng);
    Tensor clean = exec.runSimple(input);

    ASSERT_TRUE(exec.mutateWeights("conv_a", [](Tensor &w) {
        for (int64_t i = 0; i < w.numel(); ++i)
            w[i] = 0.0f;
    }));
    Tensor corrupted = exec.runSimple(input);
    EXPECT_FALSE(clean.allClose(corrupted, 1e-6f));
}

// --- Engine quarantine / fallback / recovery ----------------------

/** A small SegFormer so engine tests execute real tensors quickly. */
SegformerConfig
tinyBase()
{
    SegformerConfig cfg;
    cfg.name = "segformer_fault_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

/**
 * Three LUT points where only "full" keeps two blocks per stage —
 * fault patterns on ".block1" therefore hit only the full path.
 */
std::vector<TradeoffPoint>
tinyPoints()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config = {"full", {2, 2, 2, 2}, 0, 0, 0, 1.0, 1.0};
    pts[0].normalizedUtil = 1.0;
    pts[0].absoluteUtil = 100.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].config = {"mid", {1, 1, 1, 1}, 96, 0, 0, 0.7, 0.9};
    pts[1].normalizedUtil = 0.7;
    pts[1].absoluteUtil = 70.0;
    pts[1].normalizedMiou = 0.9;
    pts[2].config = {"small", {1, 1, 1, 1}, 64, 0, 0, 0.55, 0.8};
    pts[2].normalizedUtil = 0.55;
    pts[2].absoluteUtil = 55.0;
    pts[2].normalizedMiou = 0.8;
    return pts;
}

EngineResilienceConfig
testResilience()
{
    EngineResilienceConfig cfg;
    cfg.enabled = true;
    cfg.health.enabled = true;
    cfg.health.exhaustive = true;
    cfg.maxRetries = 2;
    cfg.probationFrames = 5;
    return cfg;
}

TEST(EngineResilience, QuarantineFallbackAndProbationRecovery)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());

    // Fault only layers present in the full path (second block of
    // stage 1): the pruned paths have depth 1 everywhere.
    FaultPlan plan;
    plan.seed = 99;
    plan.specs.push_back(
        {FaultKind::NaNPoison, ".block1.", 1.0, 8, 0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);

    // Frame 1: full selected, fails health, degrades to mid. Paths
    // are sorted by ascending cost, so "full" is the last index.
    const size_t full_path = engine.numPaths() - 1;
    DrtResult r = engine.infer(image, 1000.0);
    EXPECT_EQ(r.configLabel, "mid");
    EXPECT_TRUE(r.degraded);
    EXPECT_TRUE(r.healthy);
    EXPECT_EQ(r.retries, 1);
    EXPECT_EQ(r.quarantinedPaths, 1u);
    EXPECT_TRUE(engine.isQuarantined(full_path));
    EXPECT_DOUBLE_EQ(r.accuracyEstimate, 0.9);

    // While quarantined: no retry needed, but still degraded.
    r = engine.infer(image, 1000.0);
    EXPECT_EQ(r.configLabel, "mid");
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.retries, 0);
    EXPECT_TRUE(engine.isQuarantined(full_path));

    // The fault clears (transient): probation (5 frames after the
    // quarantining frame 1) keeps mid serving through frame 5, then
    // the full path returns to service.
    engine.setFaultInjector(nullptr);
    for (int i = 0; i < 3; ++i) {
        r = engine.infer(image, 1000.0);
        EXPECT_EQ(r.configLabel, "mid");
    }
    EXPECT_TRUE(engine.isQuarantined(full_path));
    r = engine.infer(image, 1000.0);
    EXPECT_EQ(r.configLabel, "full");
    EXPECT_FALSE(r.degraded);
    EXPECT_TRUE(r.healthy);
    EXPECT_EQ(r.quarantinedPaths, 0u);
    EXPECT_FALSE(engine.isQuarantined(full_path));
    EXPECT_DOUBLE_EQ(r.accuracyEstimate, 1.0);
}

TEST(EngineResilience, PersistentFaultExhaustsRetriesBestEffort)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());

    // Poison every path: the engine must still answer (best effort),
    // flag the output unhealthy, and not abort.
    FaultPlan plan;
    plan.seed = 99;
    plan.specs.push_back({FaultKind::NaNPoison, "Conv2DFuse", 1.0, 8,
                          0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    DrtResult r = engine.infer(image, 1000.0);
    EXPECT_FALSE(r.healthy);
    EXPECT_EQ(r.retries, 2); // bounded by maxRetries
    EXPECT_EQ(r.quarantinedPaths, 3u);

    // Next frame: all paths quarantined, engine still responds.
    r = engine.infer(image, 1000.0);
    EXPECT_FALSE(r.healthy);
}

TEST(EngineResilience, PersistentWeightFaultQuarantinesOnePath)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());

    // Corrupt the full path's fusion conv weights persistently (a
    // damaged weight transfer); the pruned paths have their own
    // executors and stay clean. "full" is the costliest = last path.
    ASSERT_TRUE(engine.pathExecutor(engine.numPaths() - 1).mutateWeights(
        "Conv2DFuse", [](Tensor &w) {
            w[0] = std::numeric_limits<float>::quiet_NaN();
        }));

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    for (int frame = 0; frame < 12; ++frame) {
        DrtResult r = engine.infer(image, 1000.0);
        // Whenever full is tried it fails and mid serves the frame.
        EXPECT_EQ(r.configLabel, "mid");
        EXPECT_TRUE(r.healthy);
        EXPECT_TRUE(r.degraded);
    }
}

TEST(EngineResilience, DisabledEngineDeliversCorruptedOutput)
{
    // The unhardened baseline: health checks observe the corruption
    // but nothing degrades — the NaN output reaches the caller.
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    EngineResilienceConfig cfg = testResilience();
    cfg.enabled = false;
    engine.setResilience(cfg);

    FaultPlan plan;
    plan.seed = 99;
    plan.specs.push_back(
        {FaultKind::NaNPoison, ".block1.", 1.0, 8, 0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);

    // A clean twin (same seed, no injector) gives the reference.
    DrtEngine clean(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                    AccuracyResourceLut(tinyPoints(), "ms"), 17);
    Tensor reference = clean.infer(image, 1000.0).output;

    DrtResult r = engine.infer(image, 1000.0);
    EXPECT_EQ(r.configLabel, "full");
    EXPECT_FALSE(r.healthy);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.retries, 0);
    EXPECT_FALSE(r.output.allClose(reference, 1e-6f));
}

TEST(EngineTrace, RecordsHealthAndQuarantineTransitions)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());

    FaultPlan plan;
    plan.seed = 99;
    plan.specs.push_back(
        {FaultKind::NaNPoison, ".block1.", 1.0, 8, 0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    BudgetTrace trace = makeStepTrace(8, 1000.0, 1000.0, 0);

    EngineTraceStats stats = runEngineTrace(engine, trace, image);
    ASSERT_EQ(stats.records.size(), 8u);
    EXPECT_EQ(stats.frames, 8);
    EXPECT_EQ(stats.unhealthyFrames, 0);

    // Frame 0 retried off the faulty full path and quarantined it.
    EXPECT_EQ(stats.records[0].retries, 1);
    EXPECT_TRUE(stats.records[0].degraded);
    EXPECT_EQ(stats.records[0].configLabel, "mid");
    EXPECT_EQ(stats.records[0].quarantinedPaths, 1u);
    EXPECT_GE(stats.quarantineEntries, 1);
    EXPECT_GE(stats.degradedFrames, 1);
    EXPECT_GT(stats.totalRetries, 0);

    // The full path re-enters service mid-trace (probation 5) and is
    // immediately re-faulted: a release must have been observed.
    EXPECT_GE(stats.quarantineReleases, 1);
}

} // namespace
} // namespace vitdyn
