/** @file Tests of Swin + UPerNet against published characterization
 * (Table I, Fig 4/5) and structural invariants. */

#include <gtest/gtest.h>

#include "graph/executor.hh"
#include "models/swin.hh"
#include "resilience/config.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Swin, TinyMatchesPublishedFlops)
{
    Graph g = buildSwin(swinTinyConfig());
    // Table I: 237 GFLOPs at 512x512 (MAC counting). Allow 5%.
    EXPECT_NEAR(g.totalFlops() / 1e9, 237.0, 237.0 * 0.05);
}

TEST(Swin, TinyMatchesPublishedParams)
{
    Graph g = buildSwin(swinTinyConfig());
    // Table I: 60 M parameters (backbone + UPerNet). Allow 5%.
    EXPECT_NEAR(g.totalParams() / 1e6, 60.0, 60.0 * 0.05);
}

TEST(Swin, BaseIsTwiceTinyParams)
{
    Graph tiny = buildSwin(swinTinyConfig());
    Graph base = buildSwin(swinBaseConfig());
    // Section III-B: Swin Base requires twice as many parameters.
    EXPECT_NEAR(static_cast<double>(base.totalParams()) /
                    tiny.totalParams(),
                2.0, 0.15);
}

TEST(Swin, FpnBottleneckDominates)
{
    Graph g = buildSwin(swinTinyConfig());
    const Layer &fb = g.layer(g.findLayer("fpn_bottleneck_Conv2D"));
    // Fig 4: fpn_bottleneck is 65% of Swin-Tiny FLOPs.
    EXPECT_NEAR(static_cast<double>(fb.flops()) / g.totalFlops(), 0.65,
                0.04);
    EXPECT_EQ(fb.attrs.inChannels, 2048);
    EXPECT_EQ(fb.attrs.outChannels, 512);
    EXPECT_EQ(fb.attrs.kernelH, 3);
}

TEST(Swin, FpnConvShares)
{
    Graph g = buildSwin(swinTinyConfig());
    const double total = static_cast<double>(g.totalFlops());
    // Fig 4: fpn_convs_0 16%, fpn_convs_1 4%.
    EXPECT_NEAR(g.layer(g.findLayer("fpn_convs_0_Conv2D")).flops() /
                    total,
                0.16, 0.02);
    EXPECT_NEAR(g.layer(g.findLayer("fpn_convs_1_Conv2D")).flops() /
                    total,
                0.04, 0.01);
}

TEST(Swin, ConvAndDecoderShares)
{
    Graph g = buildSwin(swinTinyConfig());
    int64_t conv = 0;
    int64_t conv_decoder = 0;
    for (const Layer &l : g.layers()) {
        if (l.category() != OpCategory::Conv)
            continue;
        conv += l.flops();
        if (l.stage.rfind("decoder", 0) == 0)
            conv_decoder += l.flops();
    }
    // Section II-B: 89% of FLOPs in convolutions; 99% of convolution
    // FLOPs live in the decoder.
    EXPECT_NEAR(static_cast<double>(conv) / g.totalFlops(), 0.89, 0.04);
    EXPECT_GT(static_cast<double>(conv_decoder) / conv, 0.97);
}

TEST(Swin, DecoderDominatesFlops)
{
    Graph g = buildSwin(swinTinyConfig());
    int64_t dec = 0;
    for (const Layer &l : g.layers())
        if (l.stage.rfind("decoder", 0) == 0)
            dec += l.flops();
    // Section II-B: 89% of FLOPs are in the decoder.
    EXPECT_NEAR(static_cast<double>(dec) / g.totalFlops(), 0.89, 0.04);
}

class SwinImageSize : public testing::TestWithParam<int64_t> {};

TEST_P(SwinImageSize, BottleneckShareGrowsWithImage)
{
    // Fig 5: the decoder fusion conv dominates across image sizes and
    // its share grows with resolution (attention's L^2 terms shrink
    // relative to it... actually both scale; the share stays majority).
    SwinConfig cfg = swinTinyConfig();
    cfg.imageH = cfg.imageW = GetParam();
    Graph g = buildSwin(cfg);
    const Layer &fb = g.layer(g.findLayer("fpn_bottleneck_Conv2D"));
    EXPECT_GT(static_cast<double>(fb.flops()) / g.totalFlops(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SwinImageSize,
                         testing::Values<int64_t>(256, 512, 768, 1024));

TEST(Swin, VariantOrdering)
{
    Graph t = buildSwin(swinTinyConfig());
    Graph s = buildSwin(swinSmallConfig());
    Graph b = buildSwin(swinBaseConfig());
    EXPECT_LT(t.totalParams(), s.totalParams());
    EXPECT_LT(s.totalParams(), b.totalParams());
    EXPECT_LT(t.totalFlops(), s.totalFlops());
    EXPECT_LT(s.totalFlops(), b.totalFlops());
}

TEST(Swin, SmallModelExecutes)
{
    SwinConfig cfg = swinTinyConfig();
    cfg.imageH = cfg.imageW = 224; // grids divisible by window 7
    cfg.numClasses = 5;
    cfg.depths = {1, 1, 1, 1};
    Graph g = buildSwin(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 224, 224}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 5, 224, 224}));
}

TEST(Swin, PaddedGridModelExecutes)
{
    // 64x64 input: stage grids 16, 8, 4, 2 are not multiples of 7;
    // the pad/crop resize path must keep execution consistent.
    SwinConfig cfg = swinTinyConfig();
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 4;
    cfg.depths = {1, 1, 1, 1};
    cfg.embedDim = 8;
    cfg.numHeads = {1, 2, 4, 8};
    cfg.decoderChannels = 16;
    Graph g = buildSwin(cfg);
    Executor exec(g, 1);
    Rng rng(2);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 4, 64, 64}));
}

TEST(Swin, TableIIIConfigsBuild)
{
    SwinConfig base = swinBaseConfig();
    const Graph full = buildSwin(base);
    for (const PruneConfig &config : swinBasePruneCatalog()) {
        Graph g = applySwinPrune(base, config);
        EXPECT_LE(g.totalFlops(), full.totalFlops()) << config.label;
        const Layer &fb = g.layer(g.findLayer("fpn_bottleneck_Conv2D"));
        EXPECT_EQ(fb.attrs.inChannels, config.fuseInChannels)
            << config.label;
    }
}

TEST(Swin, PpmPoolScalesPresent)
{
    Graph g = buildSwin(swinTinyConfig());
    for (int64_t scale : {1, 2, 3, 6}) {
        const int id =
            g.findLayer("decoder.ppm" + std::to_string(scale) + ".pool");
        ASSERT_GE(id, 0) << "missing PPM scale " << scale;
        EXPECT_EQ(g.layer(id).outShape[2], scale);
        EXPECT_EQ(g.layer(id).outShape[3], scale);
    }
}

} // namespace
} // namespace vitdyn
