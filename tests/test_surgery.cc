/** @file Tests of graph surgery: channel pruning with backward
 * propagation (the Section III mechanism) and block bypass. */

#include <gtest/gtest.h>

#include "graph/executor.hh"
#include "graph/surgery.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

Layer
makeConv(const std::string &name, int input, int64_t in_c, int64_t out_c)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv2d;
    l.attrs.inChannels = in_c;
    l.attrs.outChannels = out_c;
    l.inputs = {input};
    return l;
}

Layer
makeSimple(LayerKind kind, const std::string &name, std::vector<int> in)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.inputs = std::move(in);
    return l;
}

/**
 * The Conv2DPred pattern from the paper: conv -> BN -> ReLU -> conv.
 * Pruning the second conv's inputs must propagate through BN/ReLU and
 * shrink the first conv's outputs.
 */
TEST(Surgery, PruneThroughBnRelu)
{
    Graph g("pred_pattern");
    int in = g.addInput("x", {1, 16, 8, 8});
    int fuse = g.addLayer(makeConv("fuse", in, 16, 12));
    Layer bn;
    bn.name = "bn";
    bn.kind = LayerKind::BatchNorm;
    bn.attrs.inChannels = 12;
    bn.inputs = {fuse};
    int bnid = g.addLayer(std::move(bn));
    int act = g.addLayer(makeSimple(LayerKind::ReLU, "relu", {bnid}));
    int pred = g.addLayer(makeConv("pred", act, 12, 4));
    g.markOutput(pred);

    const int64_t before = g.totalMacs();
    const int64_t saved = pruneInputChannels(g, "pred", 8);
    EXPECT_EQ(g.totalMacs(), before - saved);
    EXPECT_GT(saved, 0);

    // Propagation shrank the producer chain.
    EXPECT_EQ(g.layer(g.findLayer("fuse")).attrs.outChannels, 8);
    EXPECT_EQ(g.layer(g.findLayer("bn")).attrs.inChannels, 8);
    EXPECT_EQ(g.layer(g.findLayer("pred")).attrs.inChannels, 8);
    // Exactly the fuse (16*12 -> 16*8) and pred (12*4 -> 8*4) savings.
    const int64_t expected =
        64LL * 16 * 4 /*fuse out drop*/ + 64LL * 4 * 4 /*pred in drop*/;
    EXPECT_EQ(saved, expected);
    // No Narrow needed: full propagation.
    for (const Layer &l : g.layers())
        EXPECT_NE(l.kind, LayerKind::Narrow) << l.name;
}

/**
 * The Conv2DFuse pattern: concat of several contributions. Tail
 * contributions are trimmed first and fully-trimmed producers die.
 */
TEST(Surgery, PruneConcatTrimsTailAndRemovesDeadProducers)
{
    Graph g("fuse_pattern");
    int in = g.addInput("x", {1, 8, 4, 4});
    int a = g.addLayer(makeConv("branch_a", in, 8, 6));
    int b = g.addLayer(makeConv("branch_b", in, 8, 6));
    int c = g.addLayer(makeConv("branch_c", in, 8, 6));
    int cat = g.addLayer(makeSimple(LayerKind::Concat, "cat", {a, b, c}));
    int fuse = g.addLayer(makeConv("fuse", cat, 18, 5));
    g.markOutput(fuse);

    // Keep 8 of 18 channels: branch_a intact (6), branch_b shrunk to
    // 2, branch_c entirely dead.
    pruneInputChannels(g, "fuse", 8);

    EXPECT_EQ(g.layer(g.findLayer("branch_a")).attrs.outChannels, 6);
    EXPECT_EQ(g.layer(g.findLayer("branch_b")).attrs.outChannels, 2);
    EXPECT_EQ(g.findLayer("branch_c"), -1); // dead-code eliminated
    EXPECT_EQ(g.layer(g.findLayer("fuse")).attrs.inChannels, 8);
    EXPECT_EQ(g.layer(g.findLayer("cat")).outShape[1], 8);
}

/**
 * The DecodeLinear0 pattern: the producer also feeds another consumer
 * (the next encoder stage), so no upstream computation can be skipped
 * — a Narrow slice is inserted instead.
 */
TEST(Surgery, PruneStopsAtSharedProducer)
{
    Graph g("dl0_pattern");
    int in = g.addInput("x", {1, 8, 4, 4});
    int stage0 = g.addLayer(makeConv("stage0", in, 8, 16));
    int stage1 = g.addLayer(makeConv("stage1", stage0, 16, 16));
    int decode = g.addLayer(makeConv("decode", stage0, 16, 4));
    g.markOutput(stage1);
    g.markOutput(decode);

    const int64_t stage0_macs = g.layer(stage0).macs();
    pruneInputChannels(g, "decode", 6);

    // stage0 keeps its width (stage1 still needs it)...
    EXPECT_EQ(g.layer(g.findLayer("stage0")).attrs.outChannels, 16);
    EXPECT_EQ(g.layer(g.findLayer("stage0")).macs(), stage0_macs);
    // ...and a Narrow slice feeds the pruned consumer.
    const int did = g.findLayer("decode");
    const Layer &narrow = g.layer(g.layer(did).inputs[0]);
    EXPECT_EQ(narrow.kind, LayerKind::Narrow);
    EXPECT_EQ(narrow.attrs.outChannels, 6);
    EXPECT_EQ(g.layer(did).attrs.inChannels, 6);
}

TEST(Surgery, PruneGraphStillExecutes)
{
    Graph g("exec_after_prune");
    int in = g.addInput("x", {1, 4, 6, 6});
    int a = g.addLayer(makeConv("a", in, 4, 10));
    int b = g.addLayer(makeConv("b", a, 10, 3));
    g.markOutput(b);

    pruneInputChannels(g, "b", 7);
    Executor exec(g, 1);
    Rng rng(1);
    Tensor out = exec.runSimple(Tensor::randn({1, 4, 6, 6}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 3, 6, 6}));
}

TEST(Surgery, PruneUnknownLayerFatal)
{
    Graph g("x");
    g.addInput("x", {1, 4, 2, 2});
    EXPECT_EXIT(pruneInputChannels(g, "nope", 2),
                testing::ExitedWithCode(1), "no layer named");
}

TEST(Surgery, PruneTooManyChannelsPanics)
{
    Graph g("x");
    int in = g.addInput("x", {1, 4, 2, 2});
    g.markOutput(g.addLayer(makeConv("c", in, 4, 4)));
    EXPECT_DEATH(pruneInputChannels(g, "c", 9), "bad channel count");
}

TEST(Surgery, BypassResidualBlock)
{
    // x -> [conv -> add(x)] -> out ; bypassing the block reroutes out
    // to x.
    Graph g("residual");
    int in = g.addInput("x", {1, 4, 4, 4});
    Layer conv = makeConv("block.conv", in, 4, 4);
    conv.stage = "block1";
    int cid = g.addLayer(std::move(conv));
    Layer sum = makeSimple(LayerKind::Add, "block.add", {in, cid});
    sum.stage = "block1";
    int sid = g.addLayer(std::move(sum));
    int out = g.addLayer(makeSimple(LayerKind::ReLU, "out", {sid}));
    g.markOutput(out);

    const int removed = bypassBlock(g, "block1");
    EXPECT_EQ(removed, 2);
    EXPECT_EQ(g.findLayer("block.conv"), -1);
    // 'out' now consumes the graph input directly.
    const Layer &o = g.layer(g.findLayer("out"));
    EXPECT_EQ(g.layer(o.inputs[0]).kind, LayerKind::Input);
}

TEST(Surgery, BypassedGraphExecutesAsIdentityPlusTail)
{
    Graph g("residual_exec");
    int in = g.addInput("x", {1, 4, 4, 4});
    Layer conv = makeConv("block.conv", in, 4, 4);
    conv.stage = "blockX";
    int cid = g.addLayer(std::move(conv));
    Layer sum = makeSimple(LayerKind::Add, "block.add", {in, cid});
    sum.stage = "blockX";
    int sid = g.addLayer(std::move(sum));
    g.markOutput(g.addLayer(makeSimple(LayerKind::ReLU, "tail", {sid})));

    bypassBlock(g, "blockX");
    Executor exec(g, 3);
    Rng rng(2);
    Tensor x = Tensor::randn({1, 4, 4, 4}, rng);
    // relu(x) exactly, since the block became the identity.
    Tensor y = exec.runSimple(x);
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i] > 0 ? x[i] : 0.0f);
}

TEST(Surgery, BypassUnknownBlockFatal)
{
    Graph g("x");
    g.addInput("x", {1});
    EXPECT_EXIT(bypassBlock(g, "nope"), testing::ExitedWithCode(1),
                "no layers tagged");
}

TEST(Surgery, BypassShapeChangingBlockPanics)
{
    Graph g("bad");
    int in = g.addInput("x", {1, 4, 4, 4});
    Layer conv = makeConv("c", in, 4, 8); // changes channel count
    conv.stage = "blockY";
    int cid = g.addLayer(std::move(conv));
    g.markOutput(cid);
    EXPECT_DEATH(bypassBlock(g, "blockY"), "not shape-preserving");
}

TEST(Surgery, EliminateDeadLayersCountsRemovals)
{
    Graph g("dce");
    int in = g.addInput("x", {4});
    int a = g.addLayer(makeSimple(LayerKind::ReLU, "a", {in}));
    g.addLayer(makeSimple(LayerKind::ReLU, "dead", {in}));
    g.markOutput(a);
    EXPECT_EQ(eliminateDeadLayers(g), 1);
    EXPECT_EQ(eliminateDeadLayers(g), 0);
}

TEST(Surgery, EliminateDeadLayersRemapsHeldIds)
{
    Graph g("dce");
    int in = g.addInput("x", {4});
    g.addLayer(makeSimple(LayerKind::ReLU, "dead", {in}));
    int a = g.addLayer(makeSimple(LayerKind::ReLU, "a", {in}));
    g.markOutput(a);

    // 'dead' (id 1) is eliminated, so 'a' slides from id 2 to id 1;
    // the held ids must follow it.
    std::vector<int> held = {a, in};
    EXPECT_EQ(eliminateDeadLayers(g, &held), 1);
    EXPECT_EQ(held[0], g.findLayer("a"));
    EXPECT_EQ(held[1], g.findLayer("x"));
    EXPECT_EQ(g.layer(held[0]).name, "a");
}

TEST(Surgery, EliminateDeadLayersFatalOnDeadHeldId)
{
    Graph g("dce");
    int in = g.addInput("x", {4});
    int dead = g.addLayer(makeSimple(LayerKind::ReLU, "dead", {in}));
    int a = g.addLayer(makeSimple(LayerKind::ReLU, "a", {in}));
    g.markOutput(a);

    std::vector<int> held = {dead};
    EXPECT_DEATH(eliminateDeadLayers(g, &held), "dead reference");
}

} // namespace
} // namespace vitdyn
