/** @file Tests of model switching vs dynamic pruning (Section III's
 * trained-model comparison) and LUT serialization. */

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "engine/model_switching.hh"
#include "profile/gpu_model.hh"

#include <cstdio>

namespace vitdyn
{
namespace
{

class SwitchingFixture : public testing::Test
{
  protected:
    SwitchingFixture()
        : acc_(PrunedModelKind::SegformerB2Ade),
          engine_(ModelFamily::Segformer, segformerTrainedVariants(),
                  segformerAdePruneCatalog(), acc_,
                  [this](const Graph &g) {
                      return gpu_.graphTimeMs(g);
                  })
    {
    }

    GpuLatencyModel gpu_;
    AccuracyModel acc_;
    ModelSwitchingEngine engine_;
};

TEST_F(SwitchingFixture, FrontierContainsBothFamilies)
{
    bool has_trained = false;
    bool has_pruned = false;
    for (const LutEntry &e : engine_.lut().entries()) {
        if (e.config.label.rfind("trained:", 0) == 0)
            has_trained = true;
        else
            has_pruned = true;
    }
    EXPECT_TRUE(has_trained);
    EXPECT_TRUE(has_pruned);
}

TEST_F(SwitchingFixture, GenerousBudgetPicksFullModel)
{
    auto choice = engine_.select(1e9);
    EXPECT_NEAR(choice.accuracy, 1.0, 1e-9);
    EXPECT_TRUE(choice.budgetMet);
}

TEST_F(SwitchingFixture, PassPipelineRewritesMaterializedGraphs)
{
    auto choice = engine_.select(1e9);
    auto plain = engine_.acquireExecutor(choice);

    ModelSwitchingEngine rewriting(ModelFamily::Segformer,
                                   segformerTrainedVariants(),
                                   segformerAdePruneCatalog(), acc_,
                                   [this](const Graph &g) {
                                       return gpu_.graphTimeMs(g);
                                   });
    rewriting.setPassPipeline(true);
    auto rewritten = rewriting.acquireExecutor(choice);

    // The pipeline fused layers out of the candidate graph and left it
    // lint-clean; bit-identity of fused execution is covered by
    // test_passes / test_engine.
    EXPECT_LT(rewritten->graph.numLayers(), plain->graph.numLayers());
    EXPECT_TRUE(lintGraph(rewritten->graph).clean())
        << lintGraph(rewritten->graph).toText();
}

TEST_F(SwitchingFixture, TinyBudgetPicksTrainedVariant)
{
    // At very low budgets only the retrained small models survive —
    // the paper's "switch between sets of trained models" regime.
    Graph b0 = buildSegformer([] {
        SegformerConfig c = segformerB0Config();
        return c;
    }());
    const double b0_time = gpu_.graphTimeMs(b0);
    auto choice = engine_.select(b0_time * 1.05);
    EXPECT_TRUE(choice.isTrainedVariant);
    EXPECT_EQ(choice.name, "segformer_b0");
}

TEST_F(SwitchingFixture, SwitchoverInPublishedRange)
{
    // Paper: pruning is competitive up to ~25% savings; for 50%
    // savings one should switch models. So the cheapest pruned path
    // on the combined frontier sits somewhere in (0.5, 0.95).
    const double switchover = engine_.switchoverNormalizedCost();
    EXPECT_GT(switchover, 0.5);
    EXPECT_LT(switchover, 0.95);
}

TEST_F(SwitchingFixture, SelectionAccuracyMonotoneInBudget)
{
    double prev = -1.0;
    for (double budget : {5.0, 15.0, 25.0, 40.0, 55.0, 70.0}) {
        auto choice = engine_.select(budget);
        EXPECT_GE(choice.accuracy, prev) << budget;
        prev = choice.accuracy;
    }
}

TEST_F(SwitchingFixture, BuildChoiceProducesConsistentGraph)
{
    auto big = engine_.select(1e9);
    Graph g_big = engine_.buildChoice(big);
    auto small = engine_.select(0.0); // falls back to cheapest
    Graph g_small = engine_.buildChoice(small);
    EXPECT_GT(g_big.totalFlops(), g_small.totalFlops());
}

TEST(SwitchingSwin, BaseToTinyCrossover)
{
    // Fig 7: switching Swin-Base -> Swin-Tiny wins beyond ~20%
    // savings, and Swin-Small is never clearly better than pruned
    // Base. With trained variants added, a low budget must select
    // swin_tiny (not swin_small).
    GpuLatencyModel gpu;
    AccuracyModel acc(PrunedModelKind::SwinBaseAde);
    ModelSwitchingEngine engine(
        ModelFamily::Swin, swinTrainedVariants(),
        swinBasePruneCatalog(), acc,
        [&](const Graph &g) { return gpu.graphTimeMs(g); });

    Graph tiny = buildSwin(swinTinyConfig());
    auto choice = engine.select(gpu.graphTimeMs(tiny) * 1.02);
    EXPECT_TRUE(choice.isTrainedVariant);
    EXPECT_EQ(choice.name, "swin_tiny");
}

TEST(SwitchingVariants, PublishedAccuracies)
{
    auto seg = segformerTrainedVariants();
    ASSERT_EQ(seg.size(), 3u);
    EXPECT_DOUBLE_EQ(seg[0].normalizedMiou, 1.0);
    EXPECT_NEAR(seg[1].normalizedMiou, 0.421 / 0.4651, 1e-9);
    EXPECT_NEAR(seg[2].normalizedMiou, 0.376 / 0.4651, 1e-9);

    auto city = segformerTrainedVariants(true);
    EXPECT_GT(city[2].normalizedMiou, seg[2].normalizedMiou)
        << "Cityscapes variants are closer together (more redundancy)";

    auto swin = swinTrainedVariants();
    EXPECT_NEAR(swin[2].normalizedMiou, 0.4451 / 0.4819, 1e-9);
}

TEST(LutSerialization, RoundTrip)
{
    std::vector<TradeoffPoint> pts(2);
    pts[0].config = {"full", {3, 4, 6, 3}, 3072, 0, 0, 1.0, 1.0};
    pts[0].normalizedUtil = 1.0;
    pts[0].absoluteUtil = 58.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].config = {"g", {2, 3, 4, 3}, 512, 736, 32, 0.66, 0.63};
    pts[1].normalizedUtil = 0.62;
    pts[1].absoluteUtil = 36.0;
    pts[1].normalizedMiou = 0.63;

    AccuracyResourceLut lut(pts, "ms");
    Result<AccuracyResourceLut> parsed =
        AccuracyResourceLut::fromCsv(lut.toCsv());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    AccuracyResourceLut loaded = parsed.take();

    ASSERT_EQ(loaded.entries().size(), lut.entries().size());
    EXPECT_EQ(loaded.resourceUnit(), "ms");
    for (size_t i = 0; i < lut.entries().size(); ++i) {
        const LutEntry &a = lut.entries()[i];
        const LutEntry &b = loaded.entries()[i];
        EXPECT_EQ(a.config.label, b.config.label);
        EXPECT_EQ(a.config.depths, b.config.depths);
        EXPECT_EQ(a.config.fuseInChannels, b.config.fuseInChannels);
        EXPECT_EQ(a.config.predInChannels, b.config.predInChannels);
        EXPECT_DOUBLE_EQ(a.resourceCost, b.resourceCost);
        EXPECT_DOUBLE_EQ(a.accuracyEstimate, b.accuracyEstimate);
    }
    // Lookups behave identically.
    EXPECT_EQ(loaded.lookup(40.0)->config.label, "g");
    EXPECT_EQ(loaded.lookup(60.0)->config.label, "full");
}

TEST(LutSerialization, FileRoundTrip)
{
    std::vector<TradeoffPoint> pts(1);
    pts[0].config.label = "only";
    pts[0].config.depths = {1, 1, 1, 1};
    pts[0].absoluteUtil = 7.5;
    pts[0].normalizedUtil = 1.0;
    pts[0].normalizedMiou = 0.9;
    AccuracyResourceLut lut(pts, "cycles");

    const std::string path = "/tmp/vitdyn_lut_test.csv";
    ASSERT_TRUE(lut.save(path).isOk());
    Result<AccuracyResourceLut> loaded = AccuracyResourceLut::load(path);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().message();
    ASSERT_EQ(loaded.value().entries().size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.value().entries()[0].resourceCost, 7.5);
    std::remove(path.c_str());
}

TEST(LutSerialization, RejectsGarbage)
{
    // Serving deployments load operator-supplied LUT files: a bad
    // file must surface as a recoverable error, not a process abort.
    Result<AccuracyResourceLut> r =
        AccuracyResourceLut::fromCsv("not a lut");
    ASSERT_FALSE(r.isOk());
    EXPECT_NE(r.status().message().find("missing unit header"),
              std::string::npos);
}

TEST(LutSerialization, LoadMissingFileIsRecoverable)
{
    Result<AccuracyResourceLut> r =
        AccuracyResourceLut::load("/nonexistent/vitdyn_lut.csv");
    ASSERT_FALSE(r.isOk());
    EXPECT_NE(r.status().message().find("cannot open"),
              std::string::npos);
}

} // namespace
} // namespace vitdyn
