/**
 * @file
 * Tests of the shared WeightStore: synthesis dedup, zero-copy serving,
 * bit-identical parity with a fresh store (fp32 and int8),
 * copy-on-write fault isolation, thread safety (run under TSan with
 * VITDYN_THREADS=4), and the engine-level executor caches built on it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "graph/executor.hh"
#include "graph/weight_store.hh"
#include "obs/metrics.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

/** conv -> batchnorm -> relu -> tokens -> layernorm -> linear ->
 *  softmax: every weighted layer kind plus the masked-softmax path. */
Graph
tinyMixedGraph(int64_t conv_out = 8, int64_t lin_out = 6)
{
    Graph g("tiny_mixed");
    int in = g.addInput("x", {1, 3, 8, 8});
    Layer conv;
    conv.name = "conv1";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 3;
    conv.attrs.outChannels = conv_out;
    conv.attrs.kernelH = conv.attrs.kernelW = 3;
    conv.attrs.padH = conv.attrs.padW = 1;
    conv.inputs = {in};
    int cid = g.addLayer(std::move(conv));
    Layer bn;
    bn.name = "bn1";
    bn.kind = LayerKind::BatchNorm;
    bn.attrs.inChannels = conv_out;
    bn.inputs = {cid};
    int bid = g.addLayer(std::move(bn));
    Layer act;
    act.name = "relu1";
    act.kind = LayerKind::ReLU;
    act.inputs = {bid};
    int aid = g.addLayer(std::move(act));
    Layer tok;
    tok.name = "tokens";
    tok.kind = LayerKind::ImageToTokens;
    tok.inputs = {aid};
    int tid = g.addLayer(std::move(tok));
    Layer ln;
    ln.name = "ln1";
    ln.kind = LayerKind::LayerNorm;
    ln.attrs.inFeatures = conv_out;
    ln.inputs = {tid};
    int lid = g.addLayer(std::move(ln));
    Layer fc;
    fc.name = "fc1";
    fc.kind = LayerKind::Linear;
    fc.attrs.inFeatures = conv_out;
    fc.attrs.outFeatures = lin_out;
    fc.inputs = {lid};
    int fid = g.addLayer(std::move(fc));
    Layer sm;
    sm.name = "sm1";
    sm.kind = LayerKind::Softmax;
    sm.inputs = {fid};
    g.addOutput(std::move(sm));
    return g;
}

Tensor
testInput()
{
    Rng rng(99);
    return Tensor::randn({1, 3, 8, 8}, rng);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.numel()) *
                              sizeof(float)),
              0);
}

TEST(WeightStore, DedupAndZeroCopyServing)
{
    Graph g = tinyMixedGraph();
    const Layer &conv = g.layer(g.findLayer("conv1"));

    WeightStore store;
    SharedLayerWeights a = store.get(1, conv, 0, 0);
    SharedLayerWeights b = store.get(1, conv, 0, 0);
    // Same key -> the exact same physical tensors, no copying.
    EXPECT_EQ(a.weight.get(), b.weight.get());
    EXPECT_EQ(a.bias.get(), b.bias.get());
    EXPECT_EQ(a.weight->shape(), (Shape{8, 3, 3, 3}));

    // A different seed is a different weight set.
    SharedLayerWeights c = store.get(2, conv, 0, 0);
    EXPECT_NE(c.weight.get(), a.weight.get());

    WeightStore::Stats stats = store.stats();
    EXPECT_EQ(stats.fullEntries, 2u);
    EXPECT_EQ(stats.sliceEntries, 0u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(WeightStore, PrunedSliceIsCachedAndMatchesFullPrefix)
{
    Graph g = tinyMixedGraph();
    Graph pruned = tinyMixedGraph();
    pruned.layer(pruned.findLayer("conv1")).attrs.outChannels = 5;
    const Layer &full_conv = g.layer(g.findLayer("conv1"));
    const Layer &pruned_conv =
        pruned.layer(pruned.findLayer("conv1"));

    WeightStore store;
    SharedLayerWeights full = store.get(7, full_conv, 8, 3);
    SharedLayerWeights s1 = store.get(7, pruned_conv, 8, 3);
    SharedLayerWeights s2 = store.get(7, pruned_conv, 8, 3);
    // The slice is materialized once and shared thereafter.
    EXPECT_EQ(s1.weight.get(), s2.weight.get());
    EXPECT_EQ(s1.weight->shape(), (Shape{5, 3, 3, 3}));
    // Slice contents are exactly the leading block of the full tensor.
    for (int64_t k = 0; k < 5; ++k)
        for (int64_t c = 0; c < 3; ++c)
            for (int64_t r = 0; r < 3; ++r)
                for (int64_t s = 0; s < 3; ++s)
                    EXPECT_EQ(s1.weight->at4(k, c, r, s),
                              full.weight->at4(k, c, r, s));

    WeightStore::Stats stats = store.stats();
    EXPECT_EQ(stats.fullEntries, 1u);
    EXPECT_EQ(stats.sliceEntries, 1u);
}

TEST(WeightStore, ExecutorParityAcrossStoresFp32AndInt8)
{
    // Cached (shared-store, second executor = pure cache hits) and
    // fresh-store executors must be memcmp-identical — the
    // bit-identity contract of the store.
    Graph g = tinyMixedGraph();
    const Tensor x = testInput();

    for (bool int8 : {false, true}) {
        WeightStore shared;
        Executor first(g, 5, &shared);
        first.setInt8(int8);
        Tensor y_first = first.runSimple(x);

        Executor cached(g, 5, &shared); // every weight is a cache hit
        cached.setInt8(int8);
        Tensor y_cached = cached.runSimple(x);

        WeightStore fresh;
        Executor uncached(g, 5, &fresh);
        uncached.setInt8(int8);
        Tensor y_uncached = uncached.runSimple(x);

        expectBitIdentical(y_cached, y_first);
        expectBitIdentical(y_cached, y_uncached);
    }
}

TEST(WeightStore, PrunedExecutorParityAcrossStores)
{
    // The slice-serving path is bit-identical too, int8 included.
    Graph pruned = tinyMixedGraph();
    pruned.layer(pruned.findLayer("conv1")).attrs.outChannels = 5;
    pruned.layer(pruned.findLayer("bn1")).attrs.inChannels = 5;
    pruned.layer(pruned.findLayer("ln1")).attrs.inFeatures = 5;
    pruned.layer(pruned.findLayer("fc1")).attrs.inFeatures = 5;
    pruned.recomputeShapes();
    const Tensor x = testInput();

    auto run = [&](WeightStore &store, bool int8) {
        Executor exec(pruned, 5, &store);
        exec.setFullDims("conv1", 8, 3);
        exec.setFullDims("bn1", 0, 8);
        exec.setFullDims("ln1", 0, 8);
        exec.setFullDims("fc1", 6, 8);
        exec.setInt8(int8);
        return exec.runSimple(x);
    };

    for (bool int8 : {false, true}) {
        WeightStore shared;
        Tensor y_first = run(shared, int8);
        Tensor y_cached = run(shared, int8);
        WeightStore fresh;
        Tensor y_uncached = run(fresh, int8);
        expectBitIdentical(y_cached, y_first);
        expectBitIdentical(y_cached, y_uncached);
    }
}

TEST(WeightStore, MutateWeightsIsCopyOnWrite)
{
    Graph g = tinyMixedGraph();
    const Tensor x = testInput();

    WeightStore store;
    Executor victim(g, 3, &store);
    Executor bystander(g, 3, &store);
    Tensor clean = bystander.runSimple(x);

    ASSERT_TRUE(victim.mutateWeights("conv1", [](Tensor &w) {
        for (int64_t i = 0; i < w.numel(); ++i)
            w[i] += 100.0f;
    }));
    Tensor damaged = victim.runSimple(x);
    EXPECT_FALSE(damaged.allClose(clean, 1e-3f));

    // The shared store tensor was not touched: the bystander and any
    // future executor still see pristine weights.
    expectBitIdentical(bystander.runSimple(x), clean);
    Executor later(g, 3, &store);
    expectBitIdentical(later.runSimple(x), clean);
}

TEST(WeightStore, WarmupMakesRunSynthesisFree)
{
    Graph g = tinyMixedGraph();
    WeightStore store;
    Executor exec(g, 21, &store);
    exec.warmupWeights();

    Counter &synth = MetricsRegistry::instance().counter("weights.synth");
    Counter &slices =
        MetricsRegistry::instance().counter("weights.slice_synth");
    const uint64_t synth_before = synth.value();
    const uint64_t slice_before = slices.value();
    exec.runSimple(testInput());
    EXPECT_EQ(synth.value(), synth_before);
    EXPECT_EQ(slices.value(), slice_before);
}

TEST(WeightStore, ClearDropsEntriesButOutstandingViewsSurvive)
{
    Graph g = tinyMixedGraph();
    const Layer &conv = g.layer(g.findLayer("conv1"));
    WeightStore store;
    SharedLayerWeights held = store.get(1, conv, 0, 0);
    const float first = held.weight->at4(0, 0, 0, 0);
    store.clear();
    EXPECT_EQ(store.stats().fullEntries, 0u);
    // Shared ownership keeps the tensor alive and intact.
    EXPECT_EQ(held.weight->at4(0, 0, 0, 0), first);
    // Re-synthesis after clear is a new allocation with equal bits.
    SharedLayerWeights again = store.get(1, conv, 0, 0);
    EXPECT_NE(again.weight.get(), held.weight.get());
    expectBitIdentical(*again.weight, *held.weight);
}

TEST(WeightStore, ConcurrentGetSynthesizesExactlyOnce)
{
    Graph g = tinyMixedGraph();
    Graph pruned = tinyMixedGraph();
    pruned.layer(pruned.findLayer("conv1")).attrs.outChannels = 5;
    const Layer &conv = g.layer(g.findLayer("conv1"));
    const Layer &pruned_conv =
        pruned.layer(pruned.findLayer("conv1"));

    WeightStore store;
    constexpr int kThreads = 8;
    std::vector<SharedLayerWeights> full_results(kThreads);
    std::vector<SharedLayerWeights> slice_results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            full_results[t] = store.get(1, conv, 8, 3);
            slice_results[t] = store.get(1, pruned_conv, 8, 3);
        });
    for (std::thread &thread : threads)
        thread.join();

    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(full_results[t].weight.get(),
                  full_results[0].weight.get());
        EXPECT_EQ(slice_results[t].weight.get(),
                  slice_results[0].weight.get());
    }
    // Racing first callers collapsed onto one synthesis + one slice.
    WeightStore::Stats stats = store.stats();
    EXPECT_EQ(stats.fullEntries, 1u);
    EXPECT_EQ(stats.sliceEntries, 1u);
}

TEST(WeightStore, ConcurrentExecutorsShareOneStore)
{
    Graph g = tinyMixedGraph();
    const Tensor x = testInput();
    WeightStore store;
    Executor reference(g, 9, &store);
    const Tensor expected = reference.runSimple(x);

    constexpr int kThreads = 4;
    std::vector<Tensor> outputs(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            Executor exec(g, 9, &store);
            outputs[t] = exec.runSimple(x);
        });
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        expectBitIdentical(outputs[t], expected);
}

// ---- Engine-level executor caches built on the store ----

/** The tiny SegFormer + LUT of test_engine, for cache behavior. */
SegformerConfig
tinyEngineBase()
{
    SegformerConfig cfg;
    cfg.name = "segformer_tiny_ws_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

std::vector<TradeoffPoint>
tinyEnginePoints()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config = {"full", {2, 2, 2, 2}, 0, 0, 0, 1.0, 1.0};
    pts[0].normalizedUtil = 1.0;
    pts[0].absoluteUtil = 100.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].config = {"mid", {2, 2, 2, 2}, 64, 0, 0, 0.8, 0.9};
    pts[1].normalizedUtil = 0.8;
    pts[1].absoluteUtil = 80.0;
    pts[1].normalizedMiou = 0.9;
    pts[2].config = {"small", {1, 1, 1, 1}, 48, 0, 0, 0.6, 0.7};
    pts[2].normalizedUtil = 0.6;
    pts[2].absoluteUtil = 60.0;
    pts[2].normalizedMiou = 0.7;
    return pts;
}

TEST(EngineWeightCache, RepeatSwitchPerformsZeroSynthesis)
{
    WeightStore store;
    DrtEngineOptions options;
    options.weightStore = &store;
    DrtEngine engine(ModelFamily::Segformer, tinyEngineBase(),
                     SwinConfig{},
                     AccuracyResourceLut(tinyEnginePoints(), "ms"), 23,
                     options);

    Counter &synth = MetricsRegistry::instance().counter("weights.synth");
    Counter &slices =
        MetricsRegistry::instance().counter("weights.slice_synth");
    Counter &cache_misses = MetricsRegistry::instance().counter(
        "engine.executor_cache_misses");
    Counter &cache_hits = MetricsRegistry::instance().counter(
        "engine.executor_cache_hits");

    // Prewarm materialized every path and synthesized every weight.
    const uint64_t synth_after_warm = synth.value();
    const uint64_t slice_after_warm = slices.value();
    const uint64_t misses_after_warm = cache_misses.value();
    const uint64_t hits_before = cache_hits.value();

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    // Budget schedule that switches config every frame, revisiting
    // each config repeatedly.
    for (double budget : {100.0, 60.0, 80.0, 100.0, 60.0, 80.0})
        engine.infer(image, budget);

    // The acceptance criterion: repeat switches to previously used
    // configurations perform zero weight synthesis and zero executor
    // rebuilds — every switch is a cache hit.
    EXPECT_EQ(synth.value(), synth_after_warm);
    EXPECT_EQ(slices.value(), slice_after_warm);
    EXPECT_EQ(cache_misses.value(), misses_after_warm);
    EXPECT_GE(cache_hits.value(), hits_before + 6);
}

TEST(EngineWeightCache, BoundedLruEvictsButNeverResynthesizes)
{
    WeightStore store;
    DrtEngineOptions options;
    options.weightStore = &store;
    options.executorCacheCapacity = 1;
    options.prewarm = false;
    DrtEngine engine(ModelFamily::Segformer, tinyEngineBase(),
                     SwinConfig{},
                     AccuracyResourceLut(tinyEnginePoints(), "ms"), 29,
                     options);
    EXPECT_EQ(engine.numMaterializedPaths(), 0u);

    Rng rng(2);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    Counter &synth = MetricsRegistry::instance().counter("weights.synth");

    engine.infer(image, 60.0); // materialize "small"
    EXPECT_EQ(engine.numMaterializedPaths(), 1u);
    engine.infer(image, 100.0); // evicts "small", materializes "full"
    EXPECT_EQ(engine.numMaterializedPaths(), 1u);

    // Thrash back: the executor is rebuilt (capacity 1) but every
    // weight comes from the store — zero re-synthesis.
    const uint64_t synth_after = synth.value();
    engine.infer(image, 60.0);
    engine.infer(image, 100.0);
    EXPECT_EQ(engine.numMaterializedPaths(), 1u);
    EXPECT_EQ(synth.value(), synth_after);
}

TEST(EngineWeightCache, PathsShareStoreWeightsAcrossConfigs)
{
    // Two engines over the same store and seed produce bit-identical
    // outputs per config — and the store holds one full weight set.
    WeightStore store;
    DrtEngineOptions options;
    options.weightStore = &store;
    DrtEngine a(ModelFamily::Segformer, tinyEngineBase(), SwinConfig{},
                AccuracyResourceLut(tinyEnginePoints(), "ms"), 31,
                options);
    DrtEngine b(ModelFamily::Segformer, tinyEngineBase(), SwinConfig{},
                AccuracyResourceLut(tinyEnginePoints(), "ms"), 31,
                options);

    Rng rng(3);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    for (double budget : {60.0, 100.0}) {
        Tensor ya = a.infer(image, budget).output;
        Tensor yb = b.infer(image, budget).output;
        ASSERT_EQ(ya.shape(), yb.shape());
        EXPECT_EQ(std::memcmp(ya.data(), yb.data(),
                              static_cast<size_t>(ya.numel()) *
                                  sizeof(float)),
                  0);
    }
}

} // namespace
} // namespace vitdyn
