/** @file Tests of the resilience study: accuracy model anchors, Pareto
 * extraction, and the sweep driver. */

#include <gtest/gtest.h>

#include "profile/gpu_model.hh"
#include "resilience/accuracy_model.hh"
#include "resilience/pareto.hh"
#include "resilience/sweep.hh"

namespace vitdyn
{
namespace
{

TEST(AccuracyModel, ExactAtAdeAnchors)
{
    AccuracyModel model(PrunedModelKind::SegformerB2Ade);
    for (const PruneConfig &anchor : segformerAdePruneCatalog())
        EXPECT_NEAR(model.normalizedMiou(anchor), anchor.paperMiou,
                    1e-9)
            << anchor.label;
}

TEST(AccuracyModel, ExactAtCityscapesAnchors)
{
    AccuracyModel model(PrunedModelKind::SegformerB2Cityscapes);
    for (const PruneConfig &anchor : segformerCityscapesPruneCatalog())
        EXPECT_NEAR(model.normalizedMiou(anchor), anchor.paperMiou,
                    1e-9)
            << anchor.label;
}

TEST(AccuracyModel, ExactAtSwinAnchors)
{
    AccuracyModel base(PrunedModelKind::SwinBaseAde);
    for (const PruneConfig &anchor : swinBasePruneCatalog())
        EXPECT_NEAR(base.normalizedMiou(anchor), anchor.paperMiou, 1e-9)
            << anchor.label;

    AccuracyModel tiny(PrunedModelKind::SwinTinyAde);
    for (const PruneConfig &anchor : swinTinyPruneCatalog())
        EXPECT_NEAR(tiny.normalizedMiou(anchor), anchor.paperMiou, 1e-9)
            << anchor.label;
}

TEST(AccuracyModel, MagicPredConfigBeatsFullModel)
{
    // The paper's surprise finding: 736 Conv2DPred input channels give
    // slightly *better* mIoU than the full model.
    AccuracyModel model(PrunedModelKind::SegformerB2Ade);
    PruneConfig magic{"pred736", {3, 4, 6, 3}, 3072, 736, 0, 0, 0};
    EXPECT_GT(model.normalizedMiou(magic), 1.0);
    EXPECT_NEAR(model.absoluteMiou(magic), 0.4655, 1e-3);
}

TEST(AccuracyModel, FullModelIsUnity)
{
    for (auto kind : {PrunedModelKind::SegformerB2Ade,
                      PrunedModelKind::SegformerB2Cityscapes,
                      PrunedModelKind::SwinBaseAde,
                      PrunedModelKind::SwinTinyAde}) {
        AccuracyModel model(kind);
        PruneConfig full;
        full.depths = kind == PrunedModelKind::SwinBaseAde
                          ? std::array<int64_t, 4>{2, 2, 18, 2}
                      : kind == PrunedModelKind::SwinTinyAde
                          ? std::array<int64_t, 4>{2, 2, 6, 2}
                          : std::array<int64_t, 4>{3, 4, 6, 3};
        full.fuseInChannels = 0; // unchanged
        EXPECT_NEAR(model.normalizedMiou(full), 1.0, 1e-6);
    }
}

TEST(AccuracyModel, MonotoneInFuseChannels)
{
    AccuracyModel model(PrunedModelKind::SegformerB2Ade);
    double prev = 2.0;
    for (int64_t ch : {3072, 2560, 2048, 1536, 1024, 512}) {
        PruneConfig c{"", {3, 4, 6, 3}, ch, 0, 0, 0, 0};
        const double miou = model.normalizedMiou(c);
        // Allow sub-half-percent wiggle: the paper itself found one
        // pruned configuration *better* than the full model, and that
        // anchor mildly lifts its neighborhood.
        EXPECT_LE(miou, prev + 5e-3) << ch;
        prev = miou;
    }
}

TEST(AccuracyModel, CityscapesMoreResilient)
{
    // Section III-A: the Cityscapes model degrades more gracefully.
    AccuracyModel ade(PrunedModelKind::SegformerB2Ade);
    AccuracyModel city(PrunedModelKind::SegformerB2Cityscapes);
    PruneConfig c{"", {2, 4, 5, 3}, 896, 0, 0, 0, 0};
    EXPECT_GT(city.normalizedMiou(c), ade.normalizedMiou(c));
}

TEST(AccuracyModel, SwinTinyEncoderSensitive)
{
    // Fig 7: skipping Swin-Tiny encoder layers costs disproportionate
    // accuracy relative to SegFormer.
    AccuracyModel tiny(PrunedModelKind::SwinTinyAde);
    PruneConfig full{"", {2, 2, 6, 2}, 2048, 0, 0, 0, 0};
    PruneConfig cut{"", {1, 2, 4, 2}, 2048, 0, 0, 0, 0};
    const double drop = tiny.normalizedMiou(full) -
                        tiny.normalizedMiou(cut);
    EXPECT_GT(drop, 0.15);
}

TEST(Pareto, DominatesSemantics)
{
    TradeoffPoint a;
    a.normalizedUtil = 0.8;
    a.normalizedMiou = 0.95;
    TradeoffPoint b;
    b.normalizedUtil = 0.9;
    b.normalizedMiou = 0.90;
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, FrontierRemovesDominated)
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].normalizedUtil = 1.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].normalizedUtil = 0.8;
    pts[1].normalizedMiou = 0.95;
    pts[2].normalizedUtil = 0.9;
    pts[2].normalizedMiou = 0.90; // dominated by pts[1]
    auto frontier = paretoFrontier(pts);
    EXPECT_EQ(frontier.size(), 2u);
}

TEST(Pareto, FrontierIsMonotone)
{
    // Property: sorted by util ascending, accuracy must also ascend.
    std::vector<TradeoffPoint> pts;
    for (int i = 0; i < 50; ++i) {
        TradeoffPoint p;
        p.normalizedUtil = 0.5 + 0.01 * ((i * 37) % 50);
        p.normalizedMiou = 0.6 + 0.008 * ((i * 23) % 50);
        pts.push_back(p);
    }
    auto frontier = paretoFrontier(pts);
    for (size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].normalizedUtil,
                  frontier[i - 1].normalizedUtil);
        EXPECT_GT(frontier[i].normalizedMiou,
                  frontier[i - 1].normalizedMiou);
    }
}

TEST(Pareto, NoFrontierPointDominated)
{
    std::vector<TradeoffPoint> pts;
    for (int i = 0; i < 40; ++i) {
        TradeoffPoint p;
        p.normalizedUtil = ((i * 17) % 40) / 40.0 + 0.2;
        p.normalizedMiou = ((i * 29) % 40) / 40.0 + 0.3;
        pts.push_back(p);
    }
    auto frontier = paretoFrontier(pts);
    for (const auto &f : frontier)
        for (const auto &p : pts)
            EXPECT_FALSE(dominates(p, f) &&
                         (p.normalizedUtil != f.normalizedUtil ||
                          p.normalizedMiou != f.normalizedMiou));
}

TEST(Sweep, SegformerTableIICatalogShape)
{
    // Run the Table II catalog against the GPU-time cost and check the
    // headline claim: ~17% time saved with <6% accuracy drop exists.
    GpuLatencyModel gpu;
    AccuracyModel acc(PrunedModelKind::SegformerB2Ade);
    SegformerConfig base = segformerB2Config();
    auto points = sweepSegformer(
        base, segformerAdePruneCatalog(), acc,
        [&](const Graph &g) { return gpu.graphTimeMs(g); });
    ASSERT_EQ(points.size(), 7u);

    bool found = false;
    for (const auto &p : points)
        if (p.normalizedUtil <= 0.87 && p.normalizedMiou >= 0.94)
            found = true;
    EXPECT_TRUE(found)
        << "no config with >=13% savings and <6% accuracy drop";
    // Full model config maps to (1, 1).
    EXPECT_NEAR(points[0].normalizedUtil, 1.0, 1e-9);
    EXPECT_NEAR(points[0].normalizedMiou, 1.0, 1e-9);
}

TEST(Sweep, GeneratorGridSize)
{
    auto candidates = generateCandidates({3, 4, 6, 3}, 3072,
                                         {3072, 2048, 1024}, {768, 512},
                                         1);
    // 2^4 depth combos x 3 fuse x 2 pred.
    EXPECT_EQ(candidates.size(), 16u * 3 * 2);
    for (const auto &c : candidates) {
        EXPECT_GE(c.depths[0], 2);
        EXPECT_LE(c.depths[2], 6);
    }
}

TEST(Sweep, NormalizedUtilBelowOneForPruned)
{
    GpuLatencyModel gpu;
    AccuracyModel acc(PrunedModelKind::SegformerB2Ade);
    SegformerConfig base = segformerB2Config();
    PruneConfig pruned{"p", {2, 3, 5, 2}, 1024, 0, 0, 0, 0};
    auto points = sweepSegformer(
        base, {pruned}, acc,
        [&](const Graph &g) { return gpu.graphTimeMs(g); });
    ASSERT_EQ(points.size(), 1u);
    EXPECT_LT(points[0].normalizedUtil, 0.95);
    EXPECT_GT(points[0].normalizedUtil, 0.3);
}

} // namespace
} // namespace vitdyn
