/** @file Tests of the detection workload, box IoU, and COCO-style AP
 * (Table I's object-detection accuracy metric). */

#include <gtest/gtest.h>

#include "workload/detection.hh"

namespace vitdyn
{
namespace
{

DetBox
box(double x0, double y0, double x1, double y1, int label = 0,
    double score = 1.0)
{
    return DetBox{x0, y0, x1, y1, label, score};
}

TEST(BoxIoU, IdenticalBoxes)
{
    EXPECT_DOUBLE_EQ(boxIoU(box(0, 0, 2, 2), box(0, 0, 2, 2)), 1.0);
}

TEST(BoxIoU, DisjointBoxes)
{
    EXPECT_DOUBLE_EQ(boxIoU(box(0, 0, 1, 1), box(2, 2, 3, 3)), 0.0);
}

TEST(BoxIoU, HandComputedOverlap)
{
    // 2x2 and 2x2 boxes overlapping in a 1x2 strip: inter 2, union 6.
    EXPECT_NEAR(boxIoU(box(0, 0, 2, 2), box(1, 0, 3, 2)), 2.0 / 6.0,
                1e-12);
}

TEST(BoxIoU, Symmetric)
{
    const DetBox a = box(0, 0, 3, 2);
    const DetBox b = box(1, 1, 4, 4);
    EXPECT_DOUBLE_EQ(boxIoU(a, b), boxIoU(b, a));
}

TEST(Ap, PerfectDetections)
{
    std::vector<std::vector<DetBox>> gt{{box(0, 0, 2, 2, 0),
                                         box(3, 3, 5, 5, 1)}};
    EXPECT_DOUBLE_EQ(averagePrecision(gt, gt, 0.5, 2), 1.0);
    EXPECT_DOUBLE_EQ(cocoAp(gt, gt, 2), 1.0);
}

TEST(Ap, AllMissesGiveZero)
{
    std::vector<std::vector<DetBox>> gt{{box(0, 0, 2, 2, 0)}};
    std::vector<std::vector<DetBox>> pred{{box(5, 5, 7, 7, 0, 0.9)}};
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.5, 1), 0.0);
}

TEST(Ap, WrongClassDoesNotMatch)
{
    std::vector<std::vector<DetBox>> gt{{box(0, 0, 2, 2, 0)}};
    std::vector<std::vector<DetBox>> pred{{box(0, 0, 2, 2, 1, 0.9)}};
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.5, 2), 0.0);
}

TEST(Ap, HalfDetectedHalfAp)
{
    // One of two GT boxes found perfectly, nothing else predicted:
    // precision 1 at recall 0.5 -> AP 0.5.
    std::vector<std::vector<DetBox>> gt{
        {box(0, 0, 2, 2, 0), box(5, 5, 7, 7, 0)}};
    std::vector<std::vector<DetBox>> pred{{box(0, 0, 2, 2, 0, 0.9)}};
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.5, 1), 0.5);
}

TEST(Ap, FalsePositiveLowersPrecision)
{
    std::vector<std::vector<DetBox>> gt{{box(0, 0, 2, 2, 0)}};
    // High-scoring FP first, then the true positive.
    std::vector<std::vector<DetBox>> pred{
        {box(8, 8, 9, 9, 0, 0.95), box(0, 0, 2, 2, 0, 0.9)}};
    // Recall reaches 1 at precision 1/2 -> AP 0.5.
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.5, 1), 0.5);
}

TEST(Ap, ThresholdSensitivity)
{
    // A slightly-off box matches at IoU 0.5 but not at 0.95.
    std::vector<std::vector<DetBox>> gt{{box(0, 0, 10, 10, 0)}};
    std::vector<std::vector<DetBox>> pred{
        {box(1, 1, 10, 10, 0, 0.9)}};
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.5, 1), 1.0);
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.95, 1), 0.0);
    const double coco = cocoAp(pred, gt, 1);
    EXPECT_GT(coco, 0.0);
    EXPECT_LT(coco, 1.0);
}

TEST(Ap, DuplicateDetectionsCountAsFp)
{
    std::vector<std::vector<DetBox>> gt{{box(0, 0, 2, 2, 0)}};
    std::vector<std::vector<DetBox>> pred{
        {box(0, 0, 2, 2, 0, 0.9), box(0, 0, 2, 2, 0, 0.8)}};
    // Second match of the same GT is a false positive; AP stays 1.0
    // up to full recall but the duplicate cannot add recall.
    EXPECT_DOUBLE_EQ(averagePrecision(pred, gt, 0.5, 1), 1.0);
}

TEST(SyntheticDetection, SceneShapeAndBoxes)
{
    SyntheticDetection gen(64, 96, 5, 4);
    Rng rng(1);
    DetectionSample s = gen.nextSample(rng);
    EXPECT_EQ(s.image.shape(), (Shape{1, 3, 64, 96}));
    EXPECT_EQ(s.boxes.size(), 4u);
    for (const DetBox &b : s.boxes) {
        EXPECT_GE(b.x0, 0.0);
        EXPECT_LE(b.x1, 96.0);
        EXPECT_GE(b.y0, 0.0);
        EXPECT_LE(b.y1, 64.0);
        EXPECT_GT(b.area(), 0.0);
        EXPECT_GE(b.label, 0);
        EXPECT_LT(b.label, 5);
    }
}

TEST(Degrade, ZeroSeverityIsNearPerfect)
{
    SyntheticDetection gen(64, 64, 4, 5);
    Rng rng(2);
    std::vector<std::vector<DetBox>> gt;
    std::vector<std::vector<DetBox>> pred;
    for (int i = 0; i < 8; ++i) {
        DetectionSample s = gen.nextSample(rng);
        pred.push_back(degradeDetections(s.boxes, 0.0, rng, 4, 64,
                                         64));
        gt.push_back(std::move(s.boxes));
    }
    EXPECT_GT(cocoAp(pred, gt, 4), 0.95);
}

TEST(Degrade, ApDropsWithSeverity)
{
    SyntheticDetection gen(64, 64, 4, 5);
    double prev_ap = 1.1;
    for (double severity : {0.0, 0.3, 0.7}) {
        Rng rng(3); // same scenes and degradation stream per level
        std::vector<std::vector<DetBox>> gt;
        std::vector<std::vector<DetBox>> pred;
        for (int i = 0; i < 10; ++i) {
            DetectionSample s = gen.nextSample(rng);
            pred.push_back(degradeDetections(s.boxes, severity, rng, 4,
                                             64, 64));
            gt.push_back(std::move(s.boxes));
        }
        const double ap = cocoAp(pred, gt, 4);
        EXPECT_LT(ap, prev_ap) << severity;
        prev_ap = ap;
    }
}

} // namespace
} // namespace vitdyn
