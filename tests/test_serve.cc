/** @file Tests of the multi-tenant serving front end: queue ordering
 * (priority + EDF + expiry), admission downgrade-then-reject policy,
 * deadline-aware engine entry points, the end-to-end scheduler
 * (concurrent submission, quarantine reroute, shutdown) including
 * the exactly-one-terminal-outcome invariant, and the per-request
 * observability pipeline (latency breakdowns, flight dumps). */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "obs/flight_recorder.hh"
#include "obs/span.hh"
#include "serve/admission.hh"
#include "serve/request_queue.hh"
#include "serve/scheduler.hh"
#include "util/json.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

/** A small SegFormer so serving tests execute real tensors quickly. */
SegformerConfig
tinyBase()
{
    SegformerConfig cfg;
    cfg.name = "segformer_serve_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

/**
 * Three LUT points where only "full" keeps two blocks per stage —
 * fault patterns on ".block1." therefore hit only the full path.
 */
std::vector<TradeoffPoint>
tinyPoints()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config = {"full", {2, 2, 2, 2}, 0, 0, 0, 1.0, 1.0};
    pts[0].normalizedUtil = 1.0;
    pts[0].absoluteUtil = 100.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].config = {"mid", {1, 1, 1, 1}, 96, 0, 0, 0.7, 0.9};
    pts[1].normalizedUtil = 0.7;
    pts[1].absoluteUtil = 70.0;
    pts[1].normalizedMiou = 0.9;
    pts[2].config = {"small", {1, 1, 1, 1}, 64, 0, 0, 0.55, 0.8};
    pts[2].normalizedUtil = 0.55;
    pts[2].absoluteUtil = 55.0;
    pts[2].normalizedMiou = 0.8;
    return pts;
}

EngineResilienceConfig
testResilience()
{
    EngineResilienceConfig cfg;
    cfg.enabled = true;
    cfg.health.enabled = true;
    cfg.health.exhaustive = true;
    cfg.maxRetries = 2;
    cfg.probationFrames = 5;
    return cfg;
}

Tensor
testImage(uint64_t seed = 1)
{
    Rng rng(seed);
    return Tensor::randn({1, 3, 64, 64}, rng);
}

QueuedRequest
makeQueued(uint64_t id, ServeClass cls, Deadline deadline,
           size_t config_index, double cost = 1.0)
{
    QueuedRequest q;
    q.id = id;
    q.priority = cls;
    q.deadline = deadline;
    q.configIndex = config_index;
    q.estimatedCost = cost;
    return q;
}

// --- RequestQueue ordering ----------------------------------------

TEST(RequestQueue, NoPriorityInversion)
{
    RequestQueue queue(16);
    const Deadline now = std::chrono::steady_clock::now();
    // The Batch request has the earliest deadline, Critical the
    // latest: strict priority must still serve Critical first.
    ASSERT_TRUE(queue.push(makeQueued(1, ServeClass::Batch,
                                      deadlineAfterMs(100, now), 0)));
    ASSERT_TRUE(queue.push(makeQueued(2, ServeClass::Interactive,
                                      deadlineAfterMs(200, now), 0)));
    ASSERT_TRUE(queue.push(makeQueued(3, ServeClass::Critical,
                                      deadlineAfterMs(300, now), 0)));

    auto pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    ASSERT_EQ(pop->batch.size(), 1u);
    EXPECT_EQ(pop->batch[0].id, 3u);
    EXPECT_TRUE(pop->expired.empty());

    pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 2u);
    pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 1u);
}

TEST(RequestQueue, EarliestDeadlineFirstWithinClass)
{
    RequestQueue queue(16);
    const Deadline now = std::chrono::steady_clock::now();
    ASSERT_TRUE(queue.push(makeQueued(1, ServeClass::Interactive,
                                      deadlineAfterMs(500, now), 0)));
    ASSERT_TRUE(queue.push(makeQueued(2, ServeClass::Interactive,
                                      deadlineAfterMs(100, now), 0)));
    // No deadline = most patient: sorts after every dated request.
    ASSERT_TRUE(
        queue.push(makeQueued(3, ServeClass::Interactive, {}, 0)));

    auto pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 2u);
    pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 1u);
    pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 3u);
}

TEST(RequestQueue, ExpiredRequestsAreReturnedSeparatelyNeverRun)
{
    RequestQueue queue(16);
    const Deadline now = std::chrono::steady_clock::now();
    ASSERT_TRUE(queue.push(makeQueued(
        1, ServeClass::Interactive, now - std::chrono::milliseconds(5),
        0)));
    ASSERT_TRUE(queue.push(makeQueued(2, ServeClass::Interactive,
                                      deadlineAfterMs(60'000, now),
                                      0)));

    auto pop = queue.pop(4);
    ASSERT_TRUE(pop.has_value());
    ASSERT_EQ(pop->expired.size(), 1u);
    EXPECT_EQ(pop->expired[0].id, 1u);
    ASSERT_EQ(pop->batch.size(), 1u);
    EXPECT_EQ(pop->batch[0].id, 2u);
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueue, DynamicBatchGathersOnlySameConfig)
{
    RequestQueue queue(16);
    ASSERT_TRUE(queue.push(makeQueued(1, ServeClass::Interactive, {},
                                      7, 2.0)));
    ASSERT_TRUE(queue.push(makeQueued(2, ServeClass::Interactive, {},
                                      5, 2.0)));
    ASSERT_TRUE(queue.push(makeQueued(3, ServeClass::Interactive, {},
                                      7, 2.0)));
    ASSERT_TRUE(
        queue.push(makeQueued(4, ServeClass::Batch, {}, 7, 2.0)));

    auto pop = queue.pop(8);
    ASSERT_TRUE(pop.has_value());
    // Head is id 1 (config 7); followers are every other config-7
    // request across classes, but never the config-5 one.
    ASSERT_EQ(pop->batch.size(), 3u);
    for (const QueuedRequest &r : pop->batch)
        EXPECT_EQ(r.configIndex, 7u);
    EXPECT_EQ(queue.depth(), 1u);
    EXPECT_DOUBLE_EQ(queue.backlogCost(), 2.0);
}

TEST(RequestQueue, CapacityCloseAndDrain)
{
    RequestQueue queue(2);
    EXPECT_TRUE(
        queue.push(makeQueued(1, ServeClass::Interactive, {}, 0)));
    EXPECT_TRUE(
        queue.push(makeQueued(2, ServeClass::Interactive, {}, 0)));
    EXPECT_FALSE(
        queue.push(makeQueued(3, ServeClass::Interactive, {}, 0)));

    queue.close();
    EXPECT_FALSE(
        queue.push(makeQueued(4, ServeClass::Interactive, {}, 0)));
    // A closed queue still drains what it accepted.
    auto pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 1u);
    pop = queue.pop(1);
    ASSERT_TRUE(pop.has_value());
    EXPECT_EQ(pop->batch[0].id, 2u);
    EXPECT_FALSE(queue.pop(1).has_value());
}

// --- AdmissionController ------------------------------------------

HealthSignals
idleSignals()
{
    HealthSignals s;
    s.poolThreads = 4;
    s.totalPaths = 3;
    s.costScale = 1.0;
    return s;
}

TEST(Admission, AdmitsFullBudgetWhenIdle)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    AdmissionController admission(lut);
    const Deadline now = std::chrono::steady_clock::now();

    AdmissionDecision d = admission.decide(
        1000.0, ServeClass::Interactive, {}, now, idleSignals());
    ASSERT_TRUE(d.status.isOk());
    EXPECT_FALSE(d.downgraded);
    EXPECT_EQ(lut.entries()[d.configIndex].config.label, "full");
}

TEST(Admission, DowngradesAlongFrontierBeforeRejecting)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    AdmissionController admission(lut);
    const Deadline now = std::chrono::steady_clock::now();
    const Deadline deadline = deadlineAfterMs(300.0, now);

    // Ramp the backlog: the admitted config must walk down the
    // frontier (monotonically non-increasing accuracy), pass through
    // at least one downgraded-but-admitted state, and only then turn
    // into rejections — which must persist as load keeps rising.
    double last_accuracy = 2.0;
    bool saw_downgrade = false;
    bool saw_reject = false;
    for (double backlog = 0.0; backlog <= 400.0; backlog += 10.0) {
        HealthSignals s = idleSignals();
        s.backlogCost = backlog;
        AdmissionDecision d =
            admission.decide(1000.0, ServeClass::Interactive,
                             deadline, now, s);
        if (d.status.isOk()) {
            EXPECT_FALSE(saw_reject)
                << "admitted after a rejection at backlog "
                << backlog;
            const double accuracy =
                lut.entries()[d.configIndex].accuracyEstimate;
            EXPECT_LE(accuracy, last_accuracy);
            last_accuracy = accuracy;
            saw_downgrade = saw_downgrade || d.downgraded;
        } else {
            EXPECT_EQ(d.status.code(), StatusCode::Rejected);
            EXPECT_GT(d.retryAfterMs, 0.0);
            saw_reject = true;
        }
    }
    EXPECT_TRUE(saw_downgrade);
    EXPECT_TRUE(saw_reject);
}

TEST(Admission, CriticalClassDegradesLast)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    AdmissionController admission(lut);
    const Deadline now = std::chrono::steady_clock::now();

    HealthSignals s = idleSignals();
    s.queueDepth = admission.options().queueCapacity / 2;

    auto accuracy_for = [&](ServeClass cls) {
        AdmissionDecision d =
            admission.decide(150.0, cls, {}, now, s);
        EXPECT_TRUE(d.status.isOk());
        return lut.entries()[d.configIndex].accuracyEstimate;
    };
    const double critical = accuracy_for(ServeClass::Critical);
    const double interactive = accuracy_for(ServeClass::Interactive);
    const double batch = accuracy_for(ServeClass::Batch);
    EXPECT_GT(critical, interactive);
    EXPECT_GT(interactive, batch);
}

TEST(Admission, MemoryBudgetWalksFrontierThenRejects)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    // Certified peak bounds parallel to the sorted entries.
    std::vector<size_t> peaks(lut.entries().size(), 0);
    for (size_t i = 0; i < lut.entries().size(); ++i) {
        const std::string &label = lut.entries()[i].config.label;
        peaks[i] = label == "full" ? 300 : label == "mid" ? 200 : 100;
    }
    AdmissionOptions options;
    options.memoryBudgetBytes = 250;
    AdmissionController admission(lut, options, peaks);
    const Deadline now = std::chrono::steady_clock::now();

    // Idle: "full" (certified 300) can never fit the 250-byte budget
    // — "mid" is the memory ceiling. That is the idle ideal, not a
    // degradation, so the downgrade marker stays off.
    HealthSignals s = idleSignals();
    AdmissionDecision d =
        admission.decide(1000.0, ServeClass::Interactive, {}, now, s);
    ASSERT_TRUE(d.status.isOk());
    EXPECT_EQ(lut.entries()[d.configIndex].config.label, "mid");
    EXPECT_FALSE(d.downgraded);

    // In-flight work holding 150: only "small" still fits the
    // remaining 100, and that *is* a memory-pressure downgrade.
    s.inflightPeakBytes = 150;
    d = admission.decide(1000.0, ServeClass::Interactive, {}, now, s);
    ASSERT_TRUE(d.status.isOk());
    EXPECT_EQ(lut.entries()[d.configIndex].config.label, "small");
    EXPECT_TRUE(d.downgraded);

    // 240 in flight: no config fits the remaining 10 — typed
    // rejection with a retry hint, never an over-budget admission.
    s.inflightPeakBytes = 240;
    d = admission.decide(1000.0, ServeClass::Interactive, {}, now, s);
    ASSERT_FALSE(d.status.isOk());
    EXPECT_EQ(d.status.code(), StatusCode::Rejected);
    EXPECT_GE(d.retryAfterMs, admission.options().minRetryAfterMs);
}

TEST(Admission, MemoryPolicyOffWithoutBoundsOrBudget)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    const Deadline now = std::chrono::steady_clock::now();
    HealthSignals s = idleSignals();
    s.inflightPeakBytes = 1000; // Ignored in both configurations.

    // A budget without certified bounds cannot veto anything.
    AdmissionOptions with_budget;
    with_budget.memoryBudgetBytes = 1;
    AdmissionController no_bounds(lut, with_budget);
    AdmissionDecision d =
        no_bounds.decide(1000.0, ServeClass::Interactive, {}, now, s);
    ASSERT_TRUE(d.status.isOk());
    EXPECT_EQ(lut.entries()[d.configIndex].config.label, "full");

    // Bounds without a budget: the policy is equally inert.
    AdmissionController no_budget(lut, {}, {300, 200, 100});
    d = no_budget.decide(1000.0, ServeClass::Interactive, {}, now, s);
    ASSERT_TRUE(d.status.isOk());
    EXPECT_EQ(lut.entries()[d.configIndex].config.label, "full");
}

TEST(Admission, AllQuarantinedIsTypedRejection)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    AdmissionController admission(lut);
    HealthSignals s = idleSignals();
    s.quarantinedPaths = 3;

    AdmissionDecision d =
        admission.decide(1000.0, ServeClass::Critical, {},
                         std::chrono::steady_clock::now(), s);
    ASSERT_FALSE(d.status.isOk());
    EXPECT_EQ(d.status.code(), StatusCode::Quarantined);
    EXPECT_GE(d.retryAfterMs,
              admission.options().minRetryAfterMs);
}

// --- Deadline-aware engine entry points ---------------------------

class ServeEngineFixture : public testing::Test
{
  protected:
    ServeEngineFixture()
        : engine_(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                  AccuracyResourceLut(tinyPoints(), "ms"), 17)
    {
    }

    DrtEngine engine_;
};

TEST_F(ServeEngineFixture, TryInferExpiredDeadlineNeverRuns)
{
    const Deadline past = std::chrono::steady_clock::now() -
                          std::chrono::milliseconds(1);
    Result<DrtResult> r = engine_.tryInfer(testImage(), 1000.0, past);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::DeadlineExceeded);
}

TEST_F(ServeEngineFixture, TryInferMatchesInferOnSuccess)
{
    Result<DrtResult> r = engine_.tryInfer(
        testImage(), 1000.0, deadlineAfterMs(60'000.0));
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value().configLabel, "full");
    EXPECT_TRUE(r.value().budgetMet);
    EXPECT_FALSE(r.value().degraded);
}

TEST_F(ServeEngineFixture, TryInferBatchHonorsPerImageDeadlines)
{
    const Deadline past = std::chrono::steady_clock::now() -
                          std::chrono::milliseconds(1);
    const std::vector<Tensor> images = {testImage(1), testImage(2),
                                        testImage(3)};
    const std::vector<Deadline> deadlines = {
        deadlineAfterMs(60'000.0), past, deadlineAfterMs(60'000.0)};
    auto results = engine_.tryInferBatch(images, 1000.0, deadlines);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].isOk());
    ASSERT_FALSE(results[1].isOk());
    EXPECT_EQ(results[1].status().code(),
              StatusCode::DeadlineExceeded);
    EXPECT_TRUE(results[2].isOk());
}

TEST(ServeEngine, BatchReroutesAroundQuarantineMidFlight)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());
    // Fault only the full path (second block of stage 1); the pruned
    // paths have depth 1 everywhere.
    FaultPlan plan;
    plan.seed = 99;
    plan.specs.push_back(
        {FaultKind::NaNPoison, ".block1.", 1.0, 8, 0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    const std::vector<Tensor> images = {testImage(1), testImage(2),
                                        testImage(3)};
    auto results = engine.tryInferBatch(images, 1000.0);
    ASSERT_EQ(results.size(), 3u);
    for (auto &r : results) {
        ASSERT_TRUE(r.isOk());
        EXPECT_TRUE(r.value().healthy);
        EXPECT_EQ(r.value().configLabel, "mid");
        EXPECT_TRUE(r.value().degraded);
    }
    // The first image paid the reroute; followers rode the new path.
    EXPECT_EQ(results[0].value().retries, 1);
    EXPECT_EQ(results[1].value().retries, 0);
    EXPECT_TRUE(engine.isQuarantined(engine.numPaths() - 1));
}

TEST(ServeEngine, ExhaustedPathsAreTypedQuarantineError)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());
    FaultPlan plan;
    plan.seed = 7;
    plan.specs.push_back({FaultKind::NaNPoison, "*", 1.0, 8, 0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    const std::vector<Tensor> images = {testImage(1), testImage(2)};
    auto results = engine.tryInferBatch(images, 1000.0);
    ASSERT_EQ(results.size(), 2u);
    // Image 0 burns the retry budget across every path and delivers
    // best effort; image 1 finds nothing servable left.
    ASSERT_TRUE(results[0].isOk());
    EXPECT_FALSE(results[0].value().healthy);
    ASSERT_FALSE(results[1].isOk());
    EXPECT_EQ(results[1].status().code(), StatusCode::Quarantined);
    EXPECT_TRUE(engine.allServableQuarantined());
}

// --- End-to-end scheduler -----------------------------------------

/** Terminal outcomes must partition the submitted set exactly. */
void
expectExactlyOneOutcomeEach(const ServeScheduler::Stats &stats)
{
    EXPECT_EQ(stats.completed + stats.rejected + stats.expired +
                  stats.cancelled,
              stats.submitted);
}

TEST(ServeScheduler, ConcurrentSubmissionsAllComplete)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    ServeSchedulerOptions options;
    options.queueCapacity = 64;
    options.maxBatch = 4;
    options.initialCostScale = 1e-6; // don't predict infeasibility
    ServeScheduler scheduler(engine, options);

    constexpr int kThreads = 3;
    constexpr int kPerThread = 6;
    std::vector<std::future<ServeResponse>> futures(
        kThreads * kPerThread);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                ServeRequest request;
                request.image = testImage(
                    static_cast<uint64_t>(t * kPerThread + i + 1));
                request.budget = 1000.0;
                request.priority =
                    static_cast<ServeClass>((t + i) % 3);
                request.deadline = deadlineAfterMs(60'000.0);
                futures[static_cast<size_t>(t * kPerThread + i)] =
                    scheduler.submit(std::move(request));
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();

    for (auto &future : futures) {
        ServeResponse response = future.get();
        EXPECT_TRUE(response.status.isOk())
            << response.status.message();
        EXPECT_GE(response.batchSize, 1u);
    }
    scheduler.shutdown(true);

    const ServeScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.completed, stats.submitted);
    expectExactlyOneOutcomeEach(stats);
}

TEST(ServeScheduler, QueueExpiredDeadlineIsTypedAndNeverRuns)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    ServeSchedulerOptions options;
    options.maxBatch = 1;
    options.initialCostScale = 1e-9; // admission predicts ~0 wait
    ServeScheduler scheduler(engine, options);

    // Critical fillers occupy the dispatcher; the dated Batch-class
    // request must wait behind them (strict priority) and expire.
    std::vector<std::future<ServeResponse>> fillers;
    for (int i = 0; i < 5; ++i) {
        ServeRequest request;
        request.image = testImage(static_cast<uint64_t>(i + 1));
        request.budget = 1000.0;
        request.priority = ServeClass::Critical;
        fillers.push_back(scheduler.submit(std::move(request)));
    }
    ServeRequest dated;
    dated.image = testImage(99);
    dated.budget = 1000.0;
    dated.priority = ServeClass::Batch;
    dated.deadline = deadlineAfterMs(0.5);
    std::future<ServeResponse> doomed =
        scheduler.submit(std::move(dated));

    const ServeResponse response = doomed.get();
    ASSERT_FALSE(response.status.isOk());
    EXPECT_EQ(response.status.code(), StatusCode::DeadlineExceeded);
    for (auto &filler : fillers)
        EXPECT_TRUE(filler.get().status.isOk());
    scheduler.shutdown(true);
    expectExactlyOneOutcomeEach(scheduler.stats());
    EXPECT_GE(scheduler.stats().expired, 1u);
}

TEST(ServeScheduler, QuarantineRerouteLosesNoResponse)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    engine.setResilience(testResilience());
    FaultPlan plan;
    plan.seed = 99;
    plan.specs.push_back(
        {FaultKind::NaNPoison, ".block1.", 1.0, 8, 0.0});
    FaultInjector injector(plan);
    engine.setFaultInjector(&injector);

    ServeSchedulerOptions options;
    options.maxBatch = 4;
    options.initialCostScale = 1e-6;
    ServeScheduler scheduler(engine, options);

    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 8; ++i) {
        ServeRequest request;
        request.image = testImage(static_cast<uint64_t>(i + 1));
        request.budget = 1000.0;
        request.priority = ServeClass::Interactive;
        futures.push_back(scheduler.submit(std::move(request)));
    }

    size_t rerouted = 0;
    for (auto &future : futures) {
        ServeResponse response = future.get();
        ASSERT_TRUE(response.status.isOk())
            << response.status.message();
        EXPECT_TRUE(response.result.healthy);
        if (response.rerouted) {
            ++rerouted;
            EXPECT_NE(response.result.configLabel, "full");
        }
    }
    EXPECT_GE(rerouted, 1u);
    scheduler.shutdown(true);

    const ServeScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_GE(stats.rerouted, 1u);
    expectExactlyOneOutcomeEach(stats);
}

TEST(ServeScheduler, ShutdownWithoutDrainCancelsPending)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    ServeSchedulerOptions options;
    options.maxBatch = 1;
    options.initialCostScale = 1e-6;
    ServeScheduler scheduler(engine, options);

    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 6; ++i) {
        ServeRequest request;
        request.image = testImage(static_cast<uint64_t>(i + 1));
        request.budget = 1000.0;
        futures.push_back(scheduler.submit(std::move(request)));
    }
    scheduler.shutdown(false);

    size_t completed = 0, cancelled = 0;
    for (auto &future : futures) {
        ServeResponse response = future.get();
        if (response.status.isOk()) {
            ++completed;
        } else {
            EXPECT_EQ(response.status.code(), StatusCode::Cancelled);
            ++cancelled;
        }
    }
    EXPECT_EQ(completed + cancelled, 6u);
    const ServeScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, completed);
    EXPECT_EQ(stats.cancelled, cancelled);
    expectExactlyOneOutcomeEach(stats);

    // Submission after shutdown gets a typed Cancelled outcome.
    ServeRequest late;
    late.image = testImage(42);
    late.budget = 1000.0;
    EXPECT_EQ(scheduler.submit(std::move(late)).get().status.code(),
              StatusCode::Cancelled);
}

TEST(ServeScheduler, CompletedRequestCarriesLatencyBreakdown)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    ServeSchedulerOptions options;
    options.maxBatch = 2;
    options.initialCostScale = 1e-6;
    ServeScheduler scheduler(engine, options);

    ServeRequest request;
    request.image = testImage(1);
    request.budget = 1000.0;
    request.priority = ServeClass::Interactive;
    const ServeResponse response =
        scheduler.submit(std::move(request)).get();
    scheduler.shutdown(true);

    ASSERT_TRUE(response.status.isOk()) << response.status.message();
    const LatencyBreakdown &b = response.breakdown;
    // Engine time was measured, kernel time attributed inside it,
    // and the per-category split sums to the kernel total.
    EXPECT_GT(b.engineMs, 0.0);
    EXPECT_GT(b.kernelMs, 0.0);
    EXPECT_LE(b.kernelMs, b.engineMs);
    double stage_sum = 0.0;
    for (double ms : b.stageMs)
        stage_sum += ms;
    EXPECT_NEAR(stage_sum, b.kernelMs, 1e-6);
    EXPECT_GE(b.queueMs, 0.0);
    EXPECT_GE(b.admissionMs, 0.0);
    EXPECT_FALSE(b.deadlineMiss);
    // A tensor workload is kernel-dominated once it leaves the queue;
    // dominantStage names either queue time or a kernel category.
    EXPECT_FALSE(b.dominantStage().empty());
}

#ifndef VITDYN_TRACING_DISABLED
TEST(ServeScheduler, DeadlineMissWritesFlightDumpWithSpanChain)
{
    const std::string dir =
        testing::TempDir() + "vitdyn_serve_flight";
    mkdir(dir.c_str(), 0755);
    FlightRecorder &recorder = FlightRecorder::instance();
    Tracer::instance().clear();
    FlightRecorderOptions fr;
    fr.directory = dir;
    fr.minIntervalMs = 0.0;
    recorder.arm(fr);

    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    ServeSchedulerOptions options;
    options.maxBatch = 1;
    options.initialCostScale = 1e-9;
    ServeScheduler scheduler(engine, options);

    // Same shape as QueueExpiredDeadlineIsTypedAndNeverRuns: fillers
    // occupy the dispatcher while a dated request expires behind
    // them, which must fire the DeadlineMiss flight trigger.
    std::vector<std::future<ServeResponse>> fillers;
    for (int i = 0; i < 5; ++i) {
        ServeRequest request;
        request.image = testImage(static_cast<uint64_t>(i + 1));
        request.budget = 1000.0;
        request.priority = ServeClass::Critical;
        fillers.push_back(scheduler.submit(std::move(request)));
    }
    ServeRequest dated;
    dated.image = testImage(99);
    dated.budget = 1000.0;
    dated.priority = ServeClass::Batch;
    dated.deadline = deadlineAfterMs(0.5);
    const ServeResponse doomed =
        scheduler.submit(std::move(dated)).get();
    for (auto &filler : fillers)
        filler.get();
    scheduler.shutdown(true);
    recorder.disarm();
    Tracer::instance().clear();

    EXPECT_EQ(doomed.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_TRUE(doomed.breakdown.deadlineMiss);
    EXPECT_GT(doomed.breakdown.queueMs, 0.0);

    ASSERT_GE(recorder.triggers(), 1u);
    const std::vector<std::string> paths = recorder.dumpPaths();
    ASSERT_GE(paths.size(), 1u);
    EXPECT_NE(paths[0].find("deadline_miss"), std::string::npos);

    Result<JsonValue> parsed = parseJsonFile(paths[0]);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    const JsonValue *header = parsed.value().find("flightRecorder");
    ASSERT_NE(header, nullptr);
    EXPECT_EQ(header->stringOr("trigger", ""), "deadline_miss");
    const double req_id = header->numberOr("request", 0.0);
    EXPECT_GT(req_id, 0.0);
    EXPECT_NE(header->stringOr("detail", "").find("deadline"),
              std::string::npos);

    // The dump carries the missed request's span chain — at minimum
    // the scheduler's terminal serve.request summary, every event
    // tagged with the triggering request's id.
    const JsonValue *spans = parsed.value().find("spans");
    ASSERT_NE(spans, nullptr);
    const JsonValue *events = spans->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GE(events->array().size(), 1u);
    bool saw_summary = false;
    for (const JsonValue &ev : events->array()) {
        const JsonValue *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_DOUBLE_EQ(args->numberOr("req", 0.0), req_id);
        if (ev.stringOr("name", "") == "serve.request") {
            saw_summary = true;
            EXPECT_EQ(args->stringOr("outcome", ""), "expired");
            EXPECT_GT(args->numberOr("queue_ms", 0.0), 0.0);
        }
    }
    EXPECT_TRUE(saw_summary);
    // The embedded metrics snapshot recorded the miss for the class.
    const JsonValue *metrics = parsed.value().find("metrics");
    ASSERT_NE(metrics, nullptr);
    const JsonValue *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(counters->numberOr("serve.batch.deadline_miss", 0.0),
              1.0);
}
#endif // VITDYN_TRACING_DISABLED

} // namespace
} // namespace vitdyn
