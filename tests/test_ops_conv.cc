/** @file Tests of the convolution / pooling / resize reference kernels. */

#include <gtest/gtest.h>

#include "tensor/ops.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(ConvOutDim, Formula)
{
    EXPECT_EQ(convOutDim(512, 7, 4, 3), 128);
    EXPECT_EQ(convOutDim(128, 3, 2, 1), 64);
    EXPECT_EQ(convOutDim(8, 3, 1, 1), 8);
    EXPECT_EQ(convOutDim(8, 2, 2, 0), 4);
}

TEST(Conv2d, IdentityKernel)
{
    Rng rng(1);
    Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
    Tensor w({1, 1, 1, 1}, std::vector<float>{1.0f});
    Tensor y = conv2d(x, w, Tensor{});
    EXPECT_TRUE(y.allClose(x));
}

TEST(Conv2d, HandComputed3x3)
{
    // 3x3 all-ones kernel over a 3x3 all-ones image, no padding:
    // single output = 9.
    Tensor x({1, 1, 3, 3}, 1.0f);
    Tensor w({1, 1, 3, 3}, 1.0f);
    Tensor y = conv2d(x, w, Tensor{});
    EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(Conv2d, PaddingZeros)
{
    Tensor x({1, 1, 3, 3}, 1.0f);
    Tensor w({1, 1, 3, 3}, 1.0f);
    Conv2dParams p;
    p.padH = p.padW = 1;
    Tensor y = conv2d(x, w, Tensor{}, p);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 9.0f); // center sees all 9
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0f); // corner sees 4
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 6.0f); // edge sees 6
}

TEST(Conv2d, Stride)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    Tensor w({1, 1, 1, 1}, std::vector<float>{1.0f});
    Conv2dParams p;
    p.strideH = p.strideW = 2;
    Tensor y = conv2d(x, w, Tensor{}, p);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 8.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 10.0f);
}

TEST(Conv2d, Bias)
{
    Tensor x({1, 1, 2, 2}, 0.0f);
    Tensor w({2, 1, 1, 1}, 1.0f);
    Tensor b({2}, std::vector<float>{3.0f, -1.0f});
    Tensor y = conv2d(x, w, b);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 3.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -1.0f);
}

TEST(Conv2d, MultiChannelSum)
{
    // 2 input channels with values 1 and 2; kernel weight 1 each:
    // output = 3 everywhere.
    Tensor x({1, 2, 2, 2});
    for (int64_t i = 0; i < 4; ++i)
        x[i] = 1.0f;
    for (int64_t i = 4; i < 8; ++i)
        x[i] = 2.0f;
    Tensor w({1, 2, 1, 1}, 1.0f);
    Tensor y = conv2d(x, w, Tensor{});
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], 3.0f);
}

TEST(Conv2d, DepthwiseKeepsChannelsSeparate)
{
    // groups == channels: each channel scaled by its own weight.
    Tensor x({1, 2, 2, 2}, 1.0f);
    Tensor w({2, 1, 1, 1}, std::vector<float>{2.0f, 5.0f});
    Conv2dParams p;
    p.groups = 2;
    Tensor y = conv2d(x, w, Tensor{}, p);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 5.0f);
}

TEST(Conv2d, GroupedMatchesTwoHalves)
{
    // A groups=2 conv equals two independent convs on channel halves.
    Rng rng(3);
    Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
    Tensor w = Tensor::randn({6, 2, 3, 3}, rng);
    Conv2dParams gp;
    gp.groups = 2;
    gp.padH = gp.padW = 1;
    Tensor y = conv2d(x, w, Tensor{}, gp);

    // Manual split.
    Tensor x0({1, 2, 6, 6});
    Tensor x1({1, 2, 6, 6});
    for (int64_t c = 0; c < 2; ++c)
        for (int64_t i = 0; i < 36; ++i) {
            x0[c * 36 + i] = x[c * 36 + i];
            x1[c * 36 + i] = x[(c + 2) * 36 + i];
        }
    Tensor w0({3, 2, 3, 3});
    Tensor w1({3, 2, 3, 3});
    for (int64_t i = 0; i < w0.numel(); ++i) {
        w0[i] = w[i];
        w1[i] = w[w0.numel() + i];
    }
    Conv2dParams p;
    p.padH = p.padW = 1;
    Tensor y0 = conv2d(x0, w0, Tensor{}, p);
    Tensor y1 = conv2d(x1, w1, Tensor{}, p);
    for (int64_t k = 0; k < 3; ++k)
        for (int64_t i = 0; i < 36; ++i) {
            EXPECT_NEAR(y[k * 36 + i], y0[k * 36 + i], 1e-4);
            EXPECT_NEAR(y[(k + 3) * 36 + i], y1[k * 36 + i], 1e-4);
        }
}

TEST(Conv2d, BatchIndependence)
{
    Rng rng(5);
    Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
    Tensor w = Tensor::randn({4, 3, 3, 3}, rng);
    Conv2dParams p;
    p.padH = p.padW = 1;
    Tensor y = conv2d(x, w, Tensor{}, p);

    // Running each batch element separately must agree.
    Tensor x0({1, 3, 5, 5});
    for (int64_t i = 0; i < 75; ++i)
        x0[i] = x[i];
    Tensor y0 = conv2d(x0, w, Tensor{}, p);
    for (int64_t i = 0; i < y0.numel(); ++i)
        EXPECT_NEAR(y[i], y0[i], 1e-4);
}

TEST(Conv2d, ShapeMismatchPanics)
{
    Tensor x({1, 3, 4, 4});
    Tensor w({2, 4, 1, 1}); // expects 4 input channels, image has 3
    EXPECT_DEATH(conv2d(x, w, Tensor{}), "mismatch");
}

TEST(MaxPool2d, Basic)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    Tensor y = maxPool2d(x, 2, 2);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool2d, PaddingIgnoredInMax)
{
    Tensor x({1, 1, 2, 2}, -3.0f);
    Tensor y = maxPool2d(x, 3, 2, 1);
    // Padded positions must not contribute zeros.
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], -3.0f);
}

TEST(AdaptiveAvgPool2d, GlobalAverage)
{
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    Tensor y = adaptiveAvgPool2d(x, 1, 1);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AdaptiveAvgPool2d, PartitionsCoverInput)
{
    // 6 -> 4 pooling covers all pixels; mean of means of a constant
    // image stays constant.
    Tensor x({1, 2, 6, 6}, 3.25f);
    Tensor y = adaptiveAvgPool2d(x, 4, 4);
    EXPECT_EQ(y.shape(), (Shape{1, 2, 4, 4}));
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], 3.25f);
}

TEST(Interpolate, IdentityWhenSameSize)
{
    Rng rng(8);
    Tensor x = Tensor::randn({1, 2, 5, 7}, rng);
    Tensor y = interpolateBilinear(x, 5, 7);
    EXPECT_TRUE(y.allClose(x, 1e-5f));
}

TEST(Interpolate, ConstantStaysConstant)
{
    Tensor x({1, 3, 4, 4}, 2.0f);
    Tensor y = interpolateBilinear(x, 9, 13);
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y[i], 2.0f, 1e-5f);
}

TEST(Interpolate, UpsampleLinearRamp)
{
    // A horizontal ramp stays monotone after upsampling.
    Tensor x({1, 1, 1, 4}, std::vector<float>{0, 1, 2, 3});
    Tensor y = interpolateBilinear(x, 1, 8);
    for (int64_t i = 1; i < 8; ++i)
        EXPECT_GE(y[i] + 1e-6f, y[i - 1]);
    EXPECT_NEAR(y[0], 0.0f, 0.3f);
    EXPECT_NEAR(y[7], 3.0f, 0.3f);
}

TEST(Interpolate, DownsampleAveragesNeighborhood)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i % 4);
    Tensor y = interpolateBilinear(x, 2, 2);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    // Values stay within the input range.
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_GE(y[i], 0.0f);
        EXPECT_LE(y[i], 3.0f);
    }
}

} // namespace
} // namespace vitdyn
