/** @file Tests of the convolution / pooling / resize reference kernels. */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "tensor/ops.hh"
#include "util/random.hh"
#include "util/threadpool.hh"

namespace vitdyn
{
namespace
{

TEST(ConvOutDim, Formula)
{
    EXPECT_EQ(convOutDim(512, 7, 4, 3), 128);
    EXPECT_EQ(convOutDim(128, 3, 2, 1), 64);
    EXPECT_EQ(convOutDim(8, 3, 1, 1), 8);
    EXPECT_EQ(convOutDim(8, 2, 2, 0), 4);
}

TEST(ConvOutDim, FloorsNegativeNumerators)
{
    // kernel larger than padded input: (2 - 3) / 2 must floor to -1,
    // giving 0 output positions — not truncate toward zero to 0,
    // which would report a bogus single output.
    EXPECT_EQ(convOutDim(2, 3, 2, 0), 0);
    EXPECT_EQ(convOutDim(1, 4, 3, 0), 0);
    EXPECT_EQ(convOutDim(2, 7, 2, 1), -1);
    // Exactly-fitting kernels still give one output.
    EXPECT_EQ(convOutDim(3, 3, 2, 0), 1);
}

TEST(Conv2d, CollapsedOutputPanics)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Tensor x({1, 1, 2, 2});
    Tensor w({1, 1, 3, 3}); // kernel bigger than unpadded input
    EXPECT_DEATH(conv2d(x, w, Tensor{}), "collapsed");
}

TEST(Conv2d, IdentityKernel)
{
    Rng rng(1);
    Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
    Tensor w({1, 1, 1, 1}, std::vector<float>{1.0f});
    Tensor y = conv2d(x, w, Tensor{});
    EXPECT_TRUE(y.allClose(x));
}

TEST(Conv2d, HandComputed3x3)
{
    // 3x3 all-ones kernel over a 3x3 all-ones image, no padding:
    // single output = 9.
    Tensor x({1, 1, 3, 3}, 1.0f);
    Tensor w({1, 1, 3, 3}, 1.0f);
    Tensor y = conv2d(x, w, Tensor{});
    EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(Conv2d, PaddingZeros)
{
    Tensor x({1, 1, 3, 3}, 1.0f);
    Tensor w({1, 1, 3, 3}, 1.0f);
    Conv2dParams p;
    p.padH = p.padW = 1;
    Tensor y = conv2d(x, w, Tensor{}, p);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 9.0f); // center sees all 9
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0f); // corner sees 4
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 6.0f); // edge sees 6
}

TEST(Conv2d, Stride)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    Tensor w({1, 1, 1, 1}, std::vector<float>{1.0f});
    Conv2dParams p;
    p.strideH = p.strideW = 2;
    Tensor y = conv2d(x, w, Tensor{}, p);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 8.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 10.0f);
}

TEST(Conv2d, Bias)
{
    Tensor x({1, 1, 2, 2}, 0.0f);
    Tensor w({2, 1, 1, 1}, 1.0f);
    Tensor b({2}, std::vector<float>{3.0f, -1.0f});
    Tensor y = conv2d(x, w, b);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 3.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -1.0f);
}

TEST(Conv2d, MultiChannelSum)
{
    // 2 input channels with values 1 and 2; kernel weight 1 each:
    // output = 3 everywhere.
    Tensor x({1, 2, 2, 2});
    for (int64_t i = 0; i < 4; ++i)
        x[i] = 1.0f;
    for (int64_t i = 4; i < 8; ++i)
        x[i] = 2.0f;
    Tensor w({1, 2, 1, 1}, 1.0f);
    Tensor y = conv2d(x, w, Tensor{});
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], 3.0f);
}

TEST(Conv2d, DepthwiseKeepsChannelsSeparate)
{
    // groups == channels: each channel scaled by its own weight.
    Tensor x({1, 2, 2, 2}, 1.0f);
    Tensor w({2, 1, 1, 1}, std::vector<float>{2.0f, 5.0f});
    Conv2dParams p;
    p.groups = 2;
    Tensor y = conv2d(x, w, Tensor{}, p);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 5.0f);
}

TEST(Conv2d, GroupedMatchesTwoHalves)
{
    // A groups=2 conv equals two independent convs on channel halves.
    Rng rng(3);
    Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
    Tensor w = Tensor::randn({6, 2, 3, 3}, rng);
    Conv2dParams gp;
    gp.groups = 2;
    gp.padH = gp.padW = 1;
    Tensor y = conv2d(x, w, Tensor{}, gp);

    // Manual split.
    Tensor x0({1, 2, 6, 6});
    Tensor x1({1, 2, 6, 6});
    for (int64_t c = 0; c < 2; ++c)
        for (int64_t i = 0; i < 36; ++i) {
            x0[c * 36 + i] = x[c * 36 + i];
            x1[c * 36 + i] = x[(c + 2) * 36 + i];
        }
    Tensor w0({3, 2, 3, 3});
    Tensor w1({3, 2, 3, 3});
    for (int64_t i = 0; i < w0.numel(); ++i) {
        w0[i] = w[i];
        w1[i] = w[w0.numel() + i];
    }
    Conv2dParams p;
    p.padH = p.padW = 1;
    Tensor y0 = conv2d(x0, w0, Tensor{}, p);
    Tensor y1 = conv2d(x1, w1, Tensor{}, p);
    for (int64_t k = 0; k < 3; ++k)
        for (int64_t i = 0; i < 36; ++i) {
            EXPECT_NEAR(y[k * 36 + i], y0[k * 36 + i], 1e-4);
            EXPECT_NEAR(y[(k + 3) * 36 + i], y1[k * 36 + i], 1e-4);
        }
}

TEST(Conv2d, BatchIndependence)
{
    Rng rng(5);
    Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
    Tensor w = Tensor::randn({4, 3, 3, 3}, rng);
    Conv2dParams p;
    p.padH = p.padW = 1;
    Tensor y = conv2d(x, w, Tensor{}, p);

    // Running each batch element separately must agree.
    Tensor x0({1, 3, 5, 5});
    for (int64_t i = 0; i < 75; ++i)
        x0[i] = x[i];
    Tensor y0 = conv2d(x0, w, Tensor{}, p);
    for (int64_t i = 0; i < y0.numel(); ++i)
        EXPECT_NEAR(y[i], y0[i], 1e-4);
}

TEST(Conv2d, ShapeMismatchPanics)
{
    Tensor x({1, 3, 4, 4});
    Tensor w({2, 4, 1, 1}); // expects 4 input channels, image has 3
    EXPECT_DEATH(conv2d(x, w, Tensor{}), "mismatch");
}

/**
 * Restore the global pool to its default size when a test returns or
 * fails mid-way.
 */
struct PoolSizeGuard
{
    explicit PoolSizeGuard(int threads)
    {
        ThreadPool::instance().resize(threads);
    }
    ~PoolSizeGuard() { ThreadPool::instance().resize(0); }
};

TEST(Conv2d, ThreadedAndIm2colBitIdenticalToSequential)
{
    Rng rng(11);
    // Large enough that Auto picks the GEMM path and parallelFor
    // actually shards.
    Tensor x = Tensor::randn({2, 16, 14, 14}, rng);
    Tensor w = Tensor::randn({32, 16, 3, 3}, rng);
    Tensor b = Tensor::randn({32}, rng);
    Conv2dParams p;
    p.padH = p.padW = 1;

    Tensor seq, par, gemm;
    {
        PoolSizeGuard guard(1);
        seq = conv2d(x, w, b, p, Conv2dAlgo::Direct);
    }
    {
        PoolSizeGuard guard(8);
        par = conv2d(x, w, b, p, Conv2dAlgo::Direct);
        Conv2dWorkspace ws;
        gemm = conv2d(x, w, b, p, Conv2dAlgo::Im2col, &ws);
        // Reuse of a warm workspace must not change results.
        Tensor gemm2 = conv2d(x, w, b, p, Conv2dAlgo::Im2col, &ws);
        ASSERT_EQ(gemm.shape(), gemm2.shape());
        EXPECT_EQ(std::memcmp(gemm.data(), gemm2.data(),
                              sizeof(float) * gemm.numel()),
                  0);
    }
    ASSERT_EQ(seq.shape(), par.shape());
    ASSERT_EQ(seq.shape(), gemm.shape());
    EXPECT_EQ(std::memcmp(seq.data(), par.data(),
                          sizeof(float) * seq.numel()),
              0)
        << "threaded direct conv diverged from sequential";
    EXPECT_EQ(std::memcmp(seq.data(), gemm.data(),
                          sizeof(float) * seq.numel()),
              0)
        << "im2col conv diverged from sequential direct";
}

TEST(Conv2d, Im2colBitIdenticalAcrossShapes)
{
    Rng rng(13);
    struct Case
    {
        Shape xs, ws;
        Conv2dParams p;
    };
    std::vector<Case> cases;
    // 1x1 stride-1 unpadded (in-place column matrix fast path).
    cases.push_back({{1, 24, 9, 9}, {16, 24, 1, 1}, {}});
    // 1x1 strided (needs a gathered column matrix, no repack).
    {
        Conv2dParams p;
        p.strideH = p.strideW = 2;
        cases.push_back({{2, 8, 10, 10}, {12, 8, 1, 1}, p});
    }
    // 3x3 padded (repacked weights, zero-filled halo).
    {
        Conv2dParams p;
        p.padH = p.padW = 1;
        cases.push_back({{1, 6, 12, 12}, {8, 6, 3, 3}, p});
    }
    // 7x7 stride-4 pad-3 (SegFormer/ResNet stem shape).
    {
        Conv2dParams p;
        p.strideH = p.strideW = 4;
        p.padH = p.padW = 3;
        cases.push_back({{1, 3, 32, 32}, {10, 3, 7, 7}, p});
    }
    // Asymmetric kernel and stride.
    {
        Conv2dParams p;
        p.strideH = 2;
        p.strideW = 1;
        p.padH = 0;
        p.padW = 2;
        cases.push_back({{1, 5, 11, 9}, {7, 5, 3, 5}, p});
    }
    PoolSizeGuard guard(4);
    for (size_t i = 0; i < cases.size(); ++i) {
        const Case &tc = cases[i];
        Tensor x = Tensor::randn(tc.xs, rng);
        Tensor w = Tensor::randn(tc.ws, rng);
        Tensor b = Tensor::randn({tc.ws[0]}, rng);
        Tensor direct = conv2d(x, w, b, tc.p, Conv2dAlgo::Direct);
        Tensor gemm = conv2d(x, w, b, tc.p, Conv2dAlgo::Im2col);
        ASSERT_EQ(direct.shape(), gemm.shape()) << "case " << i;
        EXPECT_EQ(std::memcmp(direct.data(), gemm.data(),
                              sizeof(float) * direct.numel()),
                  0)
            << "case " << i << " im2col mismatch";
    }
}

TEST(Conv2d, GroupedStridedPaddedThreadedParity)
{
    Rng rng(17);
    Tensor x = Tensor::randn({2, 8, 13, 13}, rng);
    Tensor w = Tensor::randn({12, 4, 3, 3}, rng);
    Tensor b = Tensor::randn({12}, rng);
    Conv2dParams p;
    p.groups = 2;
    p.strideH = p.strideW = 2;
    p.padH = p.padW = 1;
    Tensor seq, par;
    {
        PoolSizeGuard guard(1);
        seq = conv2d(x, w, b, p);
    }
    {
        PoolSizeGuard guard(8);
        par = conv2d(x, w, b, p);
    }
    ASSERT_EQ(seq.shape(), par.shape());
    EXPECT_EQ(std::memcmp(seq.data(), par.data(),
                          sizeof(float) * seq.numel()),
              0);
}

TEST(MaxPool2d, Basic)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    Tensor y = maxPool2d(x, 2, 2);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool2d, PaddingIgnoredInMax)
{
    Tensor x({1, 1, 2, 2}, -3.0f);
    Tensor y = maxPool2d(x, 3, 2, 1);
    // Padded positions must not contribute zeros.
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], -3.0f);
}

TEST(MaxPool2d, AllLowestFloatInputSurvives)
{
    // The old implementation initialized the running max with a raw
    // -3.4e38f sentinel, which an input of std::numeric_limits
    // ::lowest() ties with; -inf initialization must reproduce the
    // input exactly.
    Tensor x({1, 1, 2, 2}, std::numeric_limits<float>::lowest());
    Tensor y = maxPool2d(x, 2, 2);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
    EXPECT_EQ(y[0], std::numeric_limits<float>::lowest());
}

TEST(MaxPool2d, PadMustBeSmallerThanKernel)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Tensor x({1, 1, 4, 4}, 1.0f);
    // pad == kernel would create windows made purely of padding,
    // whose max is undefined.
    EXPECT_DEATH(maxPool2d(x, 2, 2, 2), "pad");
    EXPECT_DEATH(maxPool2d(x, 2, 2, 3), "pad");
}

TEST(MaxPool2d, ThreadedMatchesSequential)
{
    Rng rng(19);
    Tensor x = Tensor::randn({2, 6, 16, 16}, rng);
    Tensor seq, par;
    {
        PoolSizeGuard guard(1);
        seq = maxPool2d(x, 3, 2, 1);
    }
    {
        PoolSizeGuard guard(8);
        par = maxPool2d(x, 3, 2, 1);
    }
    ASSERT_EQ(seq.shape(), par.shape());
    EXPECT_EQ(std::memcmp(seq.data(), par.data(),
                          sizeof(float) * seq.numel()),
              0);
}

TEST(AdaptiveAvgPool2d, GlobalAverage)
{
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    Tensor y = adaptiveAvgPool2d(x, 1, 1);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AdaptiveAvgPool2d, PartitionsCoverInput)
{
    // 6 -> 4 pooling covers all pixels; mean of means of a constant
    // image stays constant.
    Tensor x({1, 2, 6, 6}, 3.25f);
    Tensor y = adaptiveAvgPool2d(x, 4, 4);
    EXPECT_EQ(y.shape(), (Shape{1, 2, 4, 4}));
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], 3.25f);
}

TEST(Interpolate, IdentityWhenSameSize)
{
    Rng rng(8);
    Tensor x = Tensor::randn({1, 2, 5, 7}, rng);
    Tensor y = interpolateBilinear(x, 5, 7);
    EXPECT_TRUE(y.allClose(x, 1e-5f));
}

TEST(Interpolate, ConstantStaysConstant)
{
    Tensor x({1, 3, 4, 4}, 2.0f);
    Tensor y = interpolateBilinear(x, 9, 13);
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y[i], 2.0f, 1e-5f);
}

TEST(Interpolate, UpsampleLinearRamp)
{
    // A horizontal ramp stays monotone after upsampling.
    Tensor x({1, 1, 1, 4}, std::vector<float>{0, 1, 2, 3});
    Tensor y = interpolateBilinear(x, 1, 8);
    for (int64_t i = 1; i < 8; ++i)
        EXPECT_GE(y[i] + 1e-6f, y[i - 1]);
    EXPECT_NEAR(y[0], 0.0f, 0.3f);
    EXPECT_NEAR(y[7], 3.0f, 0.3f);
}

TEST(Interpolate, DownsampleAveragesNeighborhood)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i % 4);
    Tensor y = interpolateBilinear(x, 2, 2);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    // Values stay within the input range.
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_GE(y[i], 0.0f);
        EXPECT_LE(y[i], 3.0f);
    }
}

} // namespace
} // namespace vitdyn
