/** @file Tests of the synthetic workload generator and mIoU metrics. */

#include <gtest/gtest.h>

#include "workload/metrics.hh"
#include "workload/synthetic.hh"

namespace vitdyn
{
namespace
{

TEST(Synthetic, SampleShapesAndRanges)
{
    SyntheticSegmentation gen(32, 48, 8);
    Rng rng(1);
    SegmentationSample s = gen.nextSample(rng);
    EXPECT_EQ(s.image.shape(), (Shape{1, 3, 32, 48}));
    EXPECT_EQ(s.labels.size(), 32u * 48);
    for (int label : s.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 8);
    }
}

TEST(Synthetic, Deterministic)
{
    SyntheticSegmentation gen(16, 16, 4);
    Rng r1(7);
    Rng r2(7);
    SegmentationSample a = gen.nextSample(r1);
    SegmentationSample b = gen.nextSample(r2);
    EXPECT_TRUE(a.image.allClose(b.image, 0.0f));
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Synthetic, ScenesContainObjects)
{
    SyntheticSegmentation gen(64, 64, 6, 8);
    Rng rng(3);
    int scenes_with_fg = 0;
    for (int i = 0; i < 10; ++i) {
        SegmentationSample s = gen.nextSample(rng);
        for (int label : s.labels)
            if (label != 0) {
                ++scenes_with_fg;
                break;
            }
    }
    EXPECT_EQ(scenes_with_fg, 10);
}

TEST(Synthetic, LabelsCorrelateWithColor)
{
    // Two pixels with the same label share the same class color (up to
    // texture), so the image statistics carry the labels.
    SyntheticSegmentation gen(64, 64, 4, 6);
    Rng rng(5);
    SegmentationSample s = gen.nextSample(rng);
    // Gather per-class mean red value; classes should differ.
    std::vector<double> mean(4, 0.0);
    std::vector<int> count(4, 0);
    for (int64_t y = 0; y < 64; ++y)
        for (int64_t x = 0; x < 64; ++x) {
            const int c = s.labels[y * 64 + x];
            mean[c] += s.image.at4(0, 0, y, x);
            ++count[c];
        }
    int distinct = 0;
    for (int c = 0; c < 4; ++c)
        if (count[c] > 50)
            ++distinct;
    EXPECT_GE(distinct, 2);
}

TEST(Metrics, ArgmaxLabels)
{
    Tensor logits({1, 3, 1, 2});
    logits.at4(0, 0, 0, 0) = 5.0f; // pixel 0 -> class 0
    logits.at4(0, 2, 0, 1) = 9.0f; // pixel 1 -> class 2
    auto labels = argmaxLabels(logits);
    EXPECT_EQ(labels, (std::vector<int>{0, 2}));
}

TEST(Metrics, PerfectPredictionIsOne)
{
    std::vector<int> gt{0, 1, 2, 1, 0};
    EXPECT_DOUBLE_EQ(meanIoU(gt, gt, 3), 1.0);
    EXPECT_DOUBLE_EQ(pixelAccuracy(gt, gt), 1.0);
}

TEST(Metrics, DisjointPredictionIsZero)
{
    std::vector<int> gt{0, 0, 0};
    std::vector<int> pred{1, 1, 1};
    EXPECT_DOUBLE_EQ(meanIoU(pred, gt, 2), 0.0);
    EXPECT_DOUBLE_EQ(pixelAccuracy(pred, gt), 0.0);
}

TEST(Metrics, HandComputedIoU)
{
    // Class 0: pred {0,1}, gt {0,2}: inter 1 (pixel 0), union 3.
    // Class 1: pred {2,3}, gt {1,3}: inter 1 (pixel 3), union 3.
    std::vector<int> gt{0, 1, 0, 1};
    std::vector<int> pred{0, 0, 1, 1};
    EXPECT_NEAR(meanIoU(pred, gt, 2), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, AbsentClassesExcluded)
{
    // Class 5 never appears: the mean is over present classes only.
    std::vector<int> gt{0, 0, 1, 1};
    std::vector<int> pred{0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(meanIoU(pred, gt, 6), 1.0);
}

TEST(Metrics, SymmetricForLabelMaps)
{
    std::vector<int> a{0, 1, 2, 2, 1};
    std::vector<int> b{0, 2, 2, 1, 1};
    EXPECT_DOUBLE_EQ(meanIoU(a, b, 3), meanIoU(b, a, 3));
}

TEST(Metrics, MismatchedSizesPanic)
{
    std::vector<int> a{0, 1};
    std::vector<int> b{0};
    EXPECT_DEATH(meanIoU(a, b, 2), "size mismatch");
}

TEST(Metrics, AgreementMiouSelfIsOne)
{
    Rng rng(9);
    Tensor logits = Tensor::randn({1, 5, 8, 8}, rng);
    EXPECT_DOUBLE_EQ(agreementMiou(logits, logits), 1.0);
}

TEST(Metrics, AgreementMiouDropsWithNoise)
{
    Rng rng(11);
    Tensor ref = Tensor::randn({1, 5, 16, 16}, rng);
    Tensor mild = ref;
    Tensor heavy = ref;
    Rng noise(12);
    for (int64_t i = 0; i < ref.numel(); ++i) {
        mild[i] += 0.1f * static_cast<float>(noise.normal());
        heavy[i] += 3.0f * static_cast<float>(noise.normal());
    }
    const double m = agreementMiou(ref, mild);
    const double h = agreementMiou(ref, heavy);
    EXPECT_GT(m, h);
    EXPECT_GT(m, 0.5);
    EXPECT_LT(h, 0.6);
}

TEST(Metrics, RandomImageShape)
{
    Rng rng(1);
    Tensor img = randomImage(2, 16, 24, rng);
    EXPECT_EQ(img.shape(), (Shape{2, 3, 16, 24}));
}

} // namespace
} // namespace vitdyn
