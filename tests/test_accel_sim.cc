/** @file Tests of the whole-graph accelerator simulator against the
 * paper's Section VI results, plus energy/area/DSE invariants. */

#include <gtest/gtest.h>

#include "accel/area.hh"
#include "accel/dse.hh"
#include "accel/simulator.hh"
#include "models/segformer.hh"
#include "models/swin.hh"
#include "resilience/config.hh"

namespace vitdyn
{
namespace
{

TEST(AccelSim, SegformerCyclesNearPublished)
{
    // Section VI-A: 4,415,208 cycles on accelerator_A (3.5 ms at
    // 1.25 GHz). Our analytic simulator should land within ~25%.
    Graph g = buildSegformer(segformerB2Config());
    AcceleratorSim sim(acceleratorA());
    GraphSimResult r = sim.run(g);
    EXPECT_GT(r.scheduledCycles, 4415208 * 0.75);
    EXPECT_LT(r.scheduledCycles, 4415208 * 1.25);
    EXPECT_NEAR(r.timeMs,
                r.scheduledCycles / (1.25e9) * 1e3, 1e-6);
}

TEST(AccelSim, StarBarelySlowerThanA)
{
    // Section VI-A: accelerator* is <3% slower and ~0.5% more energy
    // on the full model despite 4.3x less area.
    Graph g = buildSegformer(segformerB2Config());
    GraphSimResult a = AcceleratorSim(acceleratorA()).run(g);
    GraphSimResult star = AcceleratorSim(acceleratorStar()).run(g);
    const double slowdown =
        static_cast<double>(star.scheduledCycles) / a.scheduledCycles;
    EXPECT_GE(slowdown, 1.0);
    EXPECT_LT(slowdown, 1.05);
    const double energy_ratio = star.totalEnergyMj / a.totalEnergyMj;
    EXPECT_GT(energy_ratio, 0.99);
    EXPECT_LT(energy_ratio, 1.06);
}

TEST(AccelSim, SwinCyclesNearPublished)
{
    // Section VI-B: 15,482,594 cycles (12.4 ms) on accelerator*.
    Graph g = buildSwin(swinTinyConfig());
    GraphSimResult r = AcceleratorSim(acceleratorStar()).run(g);
    EXPECT_GT(r.scheduledCycles, 15482594 * 0.8);
    EXPECT_LT(r.scheduledCycles, 15482594 * 1.2);
}

TEST(AccelSim, SwinConvCyclesShare)
{
    // Section VI-B: 89% of accelerator execution time in convolutions.
    Graph g = buildSwin(swinTinyConfig());
    GraphSimResult r = AcceleratorSim(acceleratorStar()).run(g);
    int64_t conv = 0;
    for (const LayerSimResult &l : r.layers)
        if (l.layerId >= 0 &&
            g.layer(l.layerId).category() == OpCategory::Conv)
            conv += l.cycles;
    EXPECT_NEAR(static_cast<double>(conv) / r.totalCycles, 0.89, 0.07);
}

TEST(AccelSim, FuseDominatesLikeFlops)
{
    // Fig 10: on the accelerator the time distribution tracks the
    // FLOPs distribution much more closely than on the GPU.
    Graph g = buildSegformer(segformerB2Config());
    GraphSimResult r = AcceleratorSim(acceleratorA()).run(g);
    const LayerSimResult *fuse = r.findLayer("Conv2DFuse");
    ASSERT_NE(fuse, nullptr);
    const double cycle_share =
        static_cast<double>(fuse->cycles) / r.totalCycles;
    const double flops_share =
        static_cast<double>(g.layer(g.findLayer("Conv2DFuse")).flops()) /
        g.totalFlops();
    EXPECT_NEAR(cycle_share, flops_share, 0.18);
    EXPECT_GT(cycle_share, 0.35);
}

TEST(AccelSim, EnergyPerFlopOutliers)
{
    // Fig 11: the 3-channel patch embed and the DWConvs have far
    // higher energy/FLOP than the big channel-rich convs.
    Graph g = buildSegformer(segformerB2Config());
    GraphSimResult r = AcceleratorSim(acceleratorA()).run(g);
    auto energy_per_flop = [&](const std::string &name) {
        const LayerSimResult *l = r.findLayer(name);
        EXPECT_NE(l, nullptr) << name;
        return l->energyMj / std::max<int64_t>(1, l->macs);
    };
    const double fuse = energy_per_flop("Conv2DFuse");
    const double pe0 = energy_per_flop("OverlapPatchEmbed0_Conv2D");
    const double dw =
        energy_per_flop("encoder.stage0.block0.ffn.DWConv");
    EXPECT_GT(pe0, 3.0 * fuse);
    EXPECT_GT(dw, 3.0 * fuse);
}

TEST(AccelSim, AreasMatchPublished)
{
    // Table IV: 8.33 / 2.26 / 1.66 mm^2.
    EXPECT_NEAR(peArrayArea(acceleratorOfa1()).total, 8.33, 0.15);
    EXPECT_NEAR(peArrayArea(acceleratorOfa2()).total, 2.26, 0.10);
    EXPECT_NEAR(peArrayArea(acceleratorOfa3()).total, 1.66, 0.08);
}

TEST(AccelSim, WeightMemoryDominatesLargeArea)
{
    // Section VI-A: accelerator_A's area is dominated by the weight
    // memories.
    AreaBreakdown a = peArrayArea(acceleratorA());
    EXPECT_GT(a.sram, 0.7 * a.total);
    AreaBreakdown ofa3 = peArrayArea(acceleratorOfa3());
    // The paper notes memories still dominate even for OFA3.
    EXPECT_GT(ofa3.sram, 0.35 * ofa3.total);
}

TEST(AccelSim, EnergyScalesWithSramCapacity)
{
    EXPECT_GT(sramEnergyScale(1024), sramEnergyScale(128));
    EXPECT_GT(sramEnergyScale(128), sramEnergyScale(32));
    EXPECT_NEAR(sramEnergyScale(128), 1.0, 1e-9);
}

TEST(AccelSim, PrunedModelsCheaper)
{
    SegformerConfig base = segformerB2Config();
    AcceleratorSim sim(acceleratorStar());
    const Graph full = buildSegformer(base);
    GraphSimResult full_r = sim.run(full);
    int64_t prev_cycles = full_r.scheduledCycles + 1;
    double prev_energy = full_r.totalEnergyMj * 1.001;
    for (const PruneConfig &config : segformerAdePruneCatalog()) {
        Graph g = applySegformerPrune(base, config);
        GraphSimResult r = sim.run(g);
        EXPECT_LT(r.scheduledCycles, prev_cycles) << config.label;
        EXPECT_LT(r.totalEnergyMj, prev_energy) << config.label;
        prev_cycles = r.scheduledCycles;
        prev_energy = r.totalEnergyMj;
    }
}

TEST(AccelSim, EnergyNearlyArchitectureIndependent)
{
    // Fig 13's observation: for a given dynamic configuration the
    // energy varies little across weight-memory sizes (same MACs).
    Graph g = buildSegformer(segformerB2Config());
    double e128 = AcceleratorSim(acceleratorStar()).energyMj(g);
    AcceleratorConfig wm512 = acceleratorStar();
    wm512.weightMemKb = 512;
    double e512 = AcceleratorSim(wm512).energyMj(g);
    EXPECT_NEAR(e512 / e128, 1.0, 0.15);
}

TEST(AccelSim, SchedulerNeverSlower)
{
    Graph g = buildSegformer(segformerB0Config());
    GraphSimResult r = AcceleratorSim(acceleratorStar()).run(g);
    EXPECT_LE(r.scheduledCycles, r.totalCycles);
    EXPECT_GT(r.scheduledCycles, 0);
}

TEST(AccelSim, FusionReducesCycles)
{
    Graph g = buildSegformer(segformerB0Config());
    AcceleratorConfig fused = acceleratorStar();
    AcceleratorConfig unfused = acceleratorStar();
    unfused.fusePostOps = false;
    const int64_t cf = AcceleratorSim(fused).run(g).totalCycles;
    const int64_t cu = AcceleratorSim(unfused).run(g).totalCycles;
    EXPECT_LT(cf, cu);
}

TEST(AccelSim, DseKeepsConstantParallelism)
{
    SegformerConfig small = segformerB0Config();
    small.imageH = small.imageW = 128;
    Graph g = buildSegformer(small);
    DseOptions opts;
    opts.k0Grid = {16, 32};
    opts.c0Grid = {32};
    opts.weightMemKbGrid = {128, 1024};
    opts.activationMemKbGrid = {64};
    auto points = exploreDesignSpace(g, opts);
    ASSERT_EQ(points.size(), 4u);
    for (const DsePoint &p : points)
        EXPECT_EQ(p.config.parallelMacs(), 16384);
}

TEST(AccelSim, DseBestSelectors)
{
    SegformerConfig small = segformerB0Config();
    small.imageH = small.imageW = 128;
    Graph g = buildSegformer(small);
    DseOptions opts;
    opts.k0Grid = {16, 32};
    opts.c0Grid = {32};
    opts.weightMemKbGrid = {128};
    opts.activationMemKbGrid = {64};
    auto points = exploreDesignSpace(g, opts);
    const DsePoint &lat = bestByLatency(points);
    const DsePoint &en = bestByEnergy(points);
    for (const DsePoint &p : points) {
        EXPECT_GE(p.cycles, lat.cycles);
        EXPECT_GE(p.energyMj, en.energyMj);
    }
}

TEST(AccelSim, HigherVectorizationLowerEnergy)
{
    // Fig 14: K0 = C0 = 32 accelerators burn less energy than
    // K0 = C0 = 16 with more PEs (more input multicast + control).
    SegformerConfig small = segformerB0Config();
    small.imageH = small.imageW = 256;
    Graph g = buildSegformer(small);
    const double e32 = AcceleratorSim(
        makeVectorizationVariant(32, 32, 128, 64)).energyMj(g);
    const double e16 = AcceleratorSim(
        makeVectorizationVariant(16, 16, 128, 64)).energyMj(g);
    EXPECT_LT(e32, e16);
}

} // namespace
} // namespace vitdyn
