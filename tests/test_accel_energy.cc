/** @file Unit tests of the accelerator energy, area, and scheduler
 * components (the Section V/VI cost models). */

#include <gtest/gtest.h>

#include "accel/area.hh"
#include "accel/energy.hh"
#include "accel/scheduler.hh"
#include "accel/simulator.hh"
#include "models/segformer.hh"

namespace vitdyn
{
namespace
{

TilingSolution
solvedFuse(const AcceleratorConfig &cfg)
{
    ConvWorkload fuse{1, 768, 3072, 128, 128, 1, 1, 1, 1, 1};
    return solveTiling(cfg, fuse);
}

TEST(Energy, MacTermScalesWithMacs)
{
    const AcceleratorConfig cfg = acceleratorStar();
    ConvWorkload small{1, 64, 64, 16, 16, 1, 1, 1, 1, 1};
    ConvWorkload big{1, 64, 64, 64, 64, 1, 1, 1, 1, 1};
    const double e_small = layerEnergyMj(cfg, solveTiling(cfg, small));
    const double e_big = layerEnergyMj(cfg, solveTiling(cfg, big));
    // 16x the MACs: energy grows close to proportionally.
    EXPECT_GT(e_big / e_small, 8.0);
    EXPECT_LT(e_big / e_small, 24.0);
}

TEST(Energy, LwsReuseReducesWmEnergy)
{
    AcceleratorConfig q8 = acceleratorStar();
    AcceleratorConfig q1 = acceleratorStar();
    q1.maxQ0 = 1;
    const double e8 = layerEnergyMj(q8, solvedFuse(q8));
    const double e1 = layerEnergyMj(q1, solvedFuse(q1));
    EXPECT_GT(e1, e8 * 1.1);
}

TEST(Energy, BiggerWeightMemoryCostsMorePerAccess)
{
    AcceleratorConfig small = acceleratorStar();   // WM 128
    AcceleratorConfig big = acceleratorStar();
    big.weightMemKb = 1024;
    // Same schedule assumed: compare the energy of the big-WM variant
    // on its own solution; the fuse layer is weight-read heavy.
    const double e_small = layerEnergyMj(small, solvedFuse(small));
    const double e_big = layerEnergyMj(big, solvedFuse(big));
    // Big WM avoids refetch but pays per-access; both effects are
    // present and the totals must stay within a sane band.
    EXPECT_GT(e_big, 0.5 * e_small);
    EXPECT_LT(e_big, 2.0 * e_small);
}

TEST(Energy, IdleLanesChargeUnderutilizedLayers)
{
    const AcceleratorConfig cfg = acceleratorStar();
    // Depthwise: 1/32 C0 utilization.
    ConvWorkload dw{1, 256, 256, 64, 64, 3, 3, 1, 1, 256};
    TilingSolution s = solveTiling(cfg, dw);
    EnergyParams with_idle;
    EnergyParams no_idle;
    no_idle.idleLaneFactor = 0.0;
    EXPECT_GT(layerEnergyMj(cfg, s, with_idle),
              2.0 * layerEnergyMj(cfg, s, no_idle));
}

TEST(Energy, PpuEnergyLinearInElements)
{
    const AcceleratorConfig cfg = acceleratorStar();
    const double e1 = ppuEnergyMj(cfg, 1000, 2000);
    const double e2 = ppuEnergyMj(cfg, 2000, 4000);
    EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST(Energy, SramScaleAnchoredAt128)
{
    EXPECT_DOUBLE_EQ(sramEnergyScale(128), 1.0);
    EXPECT_LT(sramEnergyScale(32), 1.0);
    EXPECT_GT(sramEnergyScale(1024), 1.2);
}

TEST(Area, PublishedCalibrationPoints)
{
    EXPECT_NEAR(peArrayArea(acceleratorA()).total, 8.33, 0.12);
    AcceleratorConfig ofa3 = acceleratorOfa3();
    EXPECT_NEAR(peArrayArea(ofa3).total, 1.66, 0.08);
}

TEST(Area, ComponentsSumToTotal)
{
    for (const auto &cfg : {acceleratorA(), acceleratorStar(),
                            makeVectorizationVariant(16, 16, 64, 32)}) {
        AreaBreakdown a = peArrayArea(cfg);
        EXPECT_NEAR(a.total, a.macs + a.sram + a.control, 1e-12)
            << cfg.name;
        EXPECT_GT(a.macs, 0.0);
        EXPECT_GT(a.sram, 0.0);
    }
}

TEST(Area, MacAreaIndependentOfSplit)
{
    // Constant 16384 MACs: the MAC area is split-invariant.
    const double a32 =
        peArrayArea(makeVectorizationVariant(32, 32, 128, 64)).macs;
    const double a16 =
        peArrayArea(makeVectorizationVariant(16, 16, 128, 64)).macs;
    EXPECT_NEAR(a32, a16, 1e-12);
}

TEST(Area, ControlAreaGrowsWithPeCount)
{
    const double c16pes =
        peArrayArea(makeVectorizationVariant(32, 32, 128, 64)).control;
    const double c64pes =
        peArrayArea(makeVectorizationVariant(16, 16, 128, 64)).control;
    EXPECT_NEAR(c64pes / c16pes, 4.0, 1e-9);
}

TEST(Scheduler, DisabledReturnsPlainSum)
{
    Graph g = buildSegformer(segformerB0Config());
    AcceleratorSim sim(acceleratorStar());
    GraphSimResult r = sim.run(g);
    EXPECT_EQ(scheduleCycles(g, r.layers, false), r.totalCycles);
}

TEST(Scheduler, NeverNegativeAndNeverSlower)
{
    for (auto cfg : {segformerB0Config(), segformerB2Config()}) {
        Graph g = buildSegformer(cfg);
        AcceleratorSim sim(acceleratorStar());
        GraphSimResult r = sim.run(g);
        const int64_t scheduled = scheduleCycles(g, r.layers, true);
        EXPECT_GT(scheduled, 0);
        EXPECT_LE(scheduled, r.totalCycles);
    }
}

TEST(Scheduler, PairsUnderutilizedIndependentLayers)
{
    // Two independent low-utilization convs in different stages can
    // overlap; the saving equals the smaller one's cycles.
    Graph g("pair");
    int in = g.addInput("x", {1, 8, 16, 16});
    auto conv = [&](const char *name, const char *stage) {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Conv2d;
        l.attrs.inChannels = 8;
        l.attrs.outChannels = 8;
        l.inputs = {in};
        l.stage = stage;
        return g.addLayer(std::move(l));
    };
    int a = conv("a", "encoder.stage1");
    int b = conv("b", "decoder");
    g.markOutput(a);
    g.markOutput(b);

    AcceleratorSim sim(acceleratorStar());
    GraphSimResult r = sim.run(g);
    ASSERT_EQ(r.layers.size(), 3u);
    // Both convs are tiny (util << 0.5) and independent.
    EXPECT_LT(r.scheduledCycles, r.totalCycles);
}

TEST(Scheduler, DependentLayersNeverOverlap)
{
    Graph g("chain");
    int in = g.addInput("x", {1, 8, 16, 16});
    Layer l1;
    l1.name = "a";
    l1.kind = LayerKind::Conv2d;
    l1.attrs.inChannels = 8;
    l1.attrs.outChannels = 8;
    l1.inputs = {in};
    l1.stage = "encoder.stage0";
    int a = g.addLayer(std::move(l1));
    Layer l2 = g.layer(a);
    l2.name = "b";
    l2.inputs = {a};
    l2.stage = "decoder";
    int b = g.addLayer(std::move(l2));
    g.markOutput(b);

    AcceleratorSim sim(acceleratorStar());
    GraphSimResult r = sim.run(g);
    EXPECT_EQ(r.scheduledCycles, r.totalCycles);
}

TEST(SimulatorApi, FindLayerAndCosts)
{
    Graph g = buildSegformer(segformerB0Config());
    AcceleratorSim sim(acceleratorStar());
    GraphSimResult r = sim.run(g);
    EXPECT_NE(r.findLayer("Conv2DFuse"), nullptr);
    EXPECT_EQ(r.findLayer("no_such_layer"), nullptr);
    EXPECT_EQ(sim.cycles(g), r.scheduledCycles);
    EXPECT_DOUBLE_EQ(sim.energyMj(g), r.totalEnergyMj);
}

} // namespace
} // namespace vitdyn
