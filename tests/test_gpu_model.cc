/** @file Tests of the calibrated TITAN V latency/energy model. */

#include <gtest/gtest.h>

#include "models/detr.hh"
#include "models/segformer.hh"
#include "profile/flops_profile.hh"
#include "profile/report.hh"

namespace vitdyn
{
namespace
{

TEST(GpuModel, RawSegformerCloseToPublished)
{
    // The uncalibrated model should already land near the published
    // 58 ms (the remaining gap is the per-model calibration scale).
    Graph g = buildSegformer(segformerB2Config());
    GpuLatencyModel gpu;
    const double raw = gpu.graphTimeMs(g);
    EXPECT_GT(raw, 58.0 * 0.7);
    EXPECT_LT(raw, 58.0 * 1.3);
}

TEST(GpuModel, CalibrationHitsTarget)
{
    Graph g = buildSegformer(segformerB2Config());
    GpuLatencyModel gpu;
    const double scale = gpu.calibrateScale(g, 58.0);
    EXPECT_NEAR(gpu.graphTimeMs(g, scale), 58.0, 1e-6);
}

TEST(GpuModel, ConvTimeShareMatchesPaper)
{
    // Fig 3: convs are 68% of FLOPs but only ~25% of GPU time.
    Graph g = buildSegformer(segformerB2Config());
    GpuLatencyModel gpu;
    Profile profile(g, gpu);
    EXPECT_NEAR(profile.timeShare("Conv"), 0.25, 0.06);
    EXPECT_GT(profile.flopsShare("Conv"), 0.6);
}

TEST(GpuModel, CityscapesToAdeRatio)
{
    // Table I: 415 ms vs 58 ms (7.2x) even though FLOPs grow 11.3x —
    // the larger GEMMs run more efficiently.
    GpuLatencyModel gpu;
    Graph ade = buildSegformer(segformerB2Config());
    Graph city = buildSegformer(segformerB2CityscapesConfig());
    const double ratio = gpu.graphTimeMs(city) / gpu.graphTimeMs(ade);
    EXPECT_GT(ratio, 5.5);
    EXPECT_LT(ratio, 9.5);
    const double flops_ratio =
        static_cast<double>(city.totalFlops()) / ade.totalFlops();
    EXPECT_LT(ratio, flops_ratio);
}

TEST(GpuModel, BypassedLayerFree)
{
    Graph g = buildSegformer(segformerB2Config());
    GpuLatencyModel gpu;
    Layer fuse = g.layer(g.findLayer("Conv2DFuse"));
    const double t = gpu.layerTimeMs(fuse, 1);
    EXPECT_GT(t, 0.0);
    fuse.bypassed = true;
    EXPECT_EQ(gpu.layerTimeMs(fuse, 1), 0.0);
}

class DetrBatch : public testing::TestWithParam<int64_t> {};

TEST_P(DetrBatch, BackboneShareGrowsWithBatch)
{
    // Fig 1 trend: the CNN backbone's share of execution time grows
    // with batch size (the transformer's small GEMMs batch up well).
    GpuLatencyModel gpu;
    DetrConfig cfg = detrConfig();
    cfg.batch = GetParam();
    Graph g = buildDetr(cfg);
    const double bb = stageTimeMs(g, gpu, "backbone");
    const double total = gpu.graphTimeMs(g);
    const double share = bb / total;
    EXPECT_GT(share, 0.6);

    if (GetParam() > 1) {
        DetrConfig base = detrConfig();
        Graph g1 = buildDetr(base);
        const double share1 =
            stageTimeMs(g1, gpu, "backbone") / gpu.graphTimeMs(g1);
        EXPECT_GT(share, share1);
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, DetrBatch,
                         testing::Values<int64_t>(1, 2, 4, 8, 16));

TEST(GpuModel, EnergyTracksIntensity)
{
    // A compute-dense conv burns more power than a memory-bound op of
    // equal duration, so pruning compute saves super-proportional
    // energy (the paper: 17% time -> 28% energy).
    GpuLatencyModel gpu;
    Graph g = buildSegformer(segformerB2Config());
    const Layer &fuse = g.layer(g.findLayer("Conv2DFuse"));
    const GpuLayerCost conv_cost = gpu.layerCost(fuse, 1);
    const double conv_power = conv_cost.energyMj / conv_cost.timeMs;

    const Layer &up = g.layer(g.findLayer("FinalUpsample"));
    const GpuLayerCost mem_cost = gpu.layerCost(up, 1);
    const double mem_power = mem_cost.energyMj / mem_cost.timeMs;
    EXPECT_GT(conv_power, 1.5 * mem_power);
}

TEST(GpuModel, PublishedLatencyLookup)
{
    EXPECT_DOUBLE_EQ(publishedGpuLatencyMs("segformer_b2"), 58.0);
    EXPECT_DOUBLE_EQ(publishedGpuLatencyMs("swin_tiny"), 215.0);
    EXPECT_DOUBLE_EQ(publishedGpuLatencyMs("detr"), 162.0);
    EXPECT_DOUBLE_EQ(publishedGpuLatencyMs("unknown_model"), 0.0);
}

TEST(GpuModel, SummaryUsesCalibration)
{
    GpuLatencyModel gpu;
    Graph g = buildSegformer(segformerB2Config());
    ModelSummary s = summarizeModel(g, gpu, "ADE20K", "SS", 0.4651);
    EXPECT_NEAR(s.latencyMs, 58.0, 0.5);
    EXPECT_NEAR(s.fps, 17.2, 0.5);
    EXPECT_EQ(s.imageSize, "512 by 512");
}

TEST(GpuModel, ProfileSharesSumToOne)
{
    GpuLatencyModel gpu;
    Graph g = buildSegformer(segformerB0Config());
    Profile p(g, gpu, {"Conv2DFuse"});
    double flops = 0.0;
    double time = 0.0;
    for (const ProfileGroup &grp : p.groups()) {
        flops += grp.flopsShare;
        time += grp.timeShare;
    }
    EXPECT_NEAR(flops, 1.0, 1e-9);
    EXPECT_NEAR(time, 1.0, 1e-9);
    // The named layer is its own group.
    EXPECT_GT(p.flopsShare("Conv2DFuse"), 0.0);
}

TEST(GpuModel, StageGrouping)
{
    GpuLatencyModel gpu;
    Graph g = buildSegformer(segformerB0Config());
    Profile p(g, gpu, {}, "stage");
    EXPECT_GT(p.flopsShare("decoder"), 0.0);
    EXPECT_GT(p.flopsShareMatching("encoder"), 0.0);
    EXPECT_NEAR(p.flopsShare("decoder") +
                    p.flopsShareMatching("encoder"),
                1.0, 1e-9);
}

} // namespace
} // namespace vitdyn
