/**
 * @file
 * Tests of the lint-gated pass framework (graph/passes/): the fusion/
 * folding/DCE/in-place battery, the PassManager's transactional lint
 * gates, and the bit-identity contract of fused execution.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/lint.hh"
#include "graph/executor.hh"
#include "graph/passes/pass.hh"
#include "graph/passes/passes.hh"
#include "graph/weight_store.hh"
#include "models/resnet.hh"
#include "models/segformer.hh"
#include "obs/metrics.hh"
#include "util/random.hh"
#include "util/threadpool.hh"

namespace vitdyn
{
namespace
{

Layer
conv(const std::string &name, int input, int64_t c_in, int64_t c_out)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv2d;
    l.attrs.inChannels = c_in;
    l.attrs.outChannels = c_out;
    l.inputs = {input};
    return l;
}

Layer
batchnorm(const std::string &name, int input, int64_t channels)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::BatchNorm;
    l.attrs.inChannels = channels;
    l.inputs = {input};
    return l;
}

Layer
unary(const std::string &name, LayerKind kind, int input)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.inputs = {input};
    return l;
}

/** input -> conv -> BN -> ReLU -> head conv (output). */
Graph
convBnReluGraph()
{
    Graph g("chain");
    const int in = g.addInput("input", {1, 4, 8, 8});
    const int c = g.addLayer(conv("conv", in, 4, 6));
    const int b = g.addLayer(batchnorm("bn", c, 6));
    const int r = g.addLayer(unary("relu", LayerKind::ReLU, b));
    g.markOutput(g.addLayer(conv("head", r, 6, 3)));
    return g;
}

TEST(FuseConvBnAct, FusesChainAndConservesAccounting)
{
    Graph g = convBnReluGraph();
    const int64_t flops_before = g.totalFlops();
    const int64_t params_before = g.totalParams();

    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_TRUE(report) << report.status().message();

    // conv+BN+ReLU collapsed into the conv: 5 layers -> 3.
    EXPECT_EQ(g.numLayers(), 3u);
    const int cid = g.findLayer("conv");
    ASSERT_GE(cid, 0);
    const Layer &fused = g.layer(cid);
    EXPECT_TRUE(fused.fused.bn);
    EXPECT_EQ(fused.fused.bnName, "bn");
    EXPECT_EQ(fused.fused.activation, LayerKind::ReLU);

    // The fused layer absorbs the accounting of the layers it
    // replaced — graph totals are pipeline invariants.
    EXPECT_EQ(g.totalFlops(), flops_before);
    EXPECT_EQ(g.totalParams(), params_before);

    // The gate already proved this; assert it stays true at rest.
    EXPECT_FALSE(lintGraph(g).hasErrors()) << lintGraph(g).toText();
}

TEST(FuseConvBnAct, SecondRunIsIdempotent)
{
    Graph g = convBnReluGraph();
    PassManager pipeline = PassManager::standardPipeline();
    ASSERT_TRUE(pipeline.run(g));
    const std::string once = g.toString();

    Result<PipelineReport> again = pipeline.run(g);
    ASSERT_TRUE(again) << again.status().message();
    EXPECT_EQ(again.value().totalRewrites(), 0);
    EXPECT_EQ(g.toString(), once);
}

TEST(FuseConvBnAct, MultiConsumerIntermediateBlocksThatHop)
{
    // conv feeds BN and a second consumer: the conv -> BN hop is not
    // a sole-consumer edge, so nothing about the conv may fuse.
    Graph g("m");
    const int in = g.addInput("input", {1, 4, 8, 8});
    const int c = g.addLayer(conv("conv", in, 4, 6));
    const int b = g.addLayer(batchnorm("bn", c, 6));
    const int side = g.addLayer(unary("side", LayerKind::GELU, c));
    Layer add;
    add.name = "join";
    add.kind = LayerKind::Add;
    add.inputs = {b, side};
    g.markOutput(g.addLayer(add));

    PassManager pipeline = PassManager::standardPipeline();
    ASSERT_TRUE(pipeline.run(g));
    EXPECT_FALSE(g.layer(g.findLayer("conv")).fused.any());
    EXPECT_GE(g.findLayer("bn"), 0);
}

TEST(FuseConvBnAct, BnWithSeveralReadersStillFoldsIntoConv)
{
    // The BN itself has two consumers — that only stops extending the
    // chain past the BN, not folding the BN into the conv; both
    // readers are rewired onto the fused conv.
    Graph g("m");
    const int in = g.addInput("input", {1, 4, 8, 8});
    const int c = g.addLayer(conv("conv", in, 4, 6));
    const int b = g.addLayer(batchnorm("bn", c, 6));
    const int r1 = g.addLayer(unary("relu1", LayerKind::ReLU, b));
    const int r2 = g.addLayer(unary("relu2", LayerKind::ReLU, b));
    Layer add;
    add.name = "join";
    add.kind = LayerKind::Add;
    add.inputs = {r1, r2};
    g.markOutput(g.addLayer(add));

    PassManager pipeline = PassManager::standardPipeline();
    ASSERT_TRUE(pipeline.run(g));
    const Layer &fused = g.layer(g.findLayer("conv"));
    EXPECT_TRUE(fused.fused.bn);
    EXPECT_EQ(fused.fused.activation, LayerKind::Identity);
    EXPECT_EQ(g.findLayer("bn"), -1);
    for (const char *name : {"relu1", "relu2"})
        EXPECT_EQ(g.layer(g.findLayer(name)).inputs[0],
                  g.findLayer("conv"));
}

TEST(FuseConvBnAct, GraphOutputTailIsNeverAbsorbed)
{
    // The ReLU is the graph output: absorbing it would change what
    // the graph publishes, so the chain must stop before it.
    Graph g("m");
    const int in = g.addInput("input", {1, 4, 8, 8});
    const int c = g.addLayer(conv("conv", in, 4, 6));
    const int b = g.addLayer(batchnorm("bn", c, 6));
    g.markOutput(g.addLayer(unary("relu", LayerKind::ReLU, b)));

    PassManager pipeline = PassManager::standardPipeline();
    ASSERT_TRUE(pipeline.run(g));
    const Layer &fused = g.layer(g.findLayer("conv"));
    // BN folds (sole consumer, not an output); the output ReLU stays.
    EXPECT_TRUE(fused.fused.bn);
    EXPECT_EQ(fused.fused.activation, LayerKind::Identity);
    EXPECT_GE(g.findLayer("relu"), 0);
}

TEST(FuseConvBnAct, FusedExecutionBitIdenticalAtAnyThreadCount)
{
    Graph unfused = convBnReluGraph();
    Graph fused = convBnReluGraph();
    PassManager pipeline = PassManager::standardPipeline();
    ASSERT_TRUE(pipeline.run(fused));

    WeightStore store;
    Executor ex_unfused(unfused, 7, &store);
    Executor ex_fused(fused, 7, &store);

    Rng rng(3);
    const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
    const int restore = ThreadPool::instance().threads();
    for (int threads : {1, 4}) {
        ThreadPool::instance().resize(threads);
        Tensor a = ex_unfused.run({{"input", x}}).at("head");
        Tensor b = ex_fused.run({{"input", x}}).at("head");
        ASSERT_EQ(a.shape(), b.shape());
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              sizeof(float) * a.numel()),
                  0)
            << "fused output diverged at " << threads << " threads";
    }
    ThreadPool::instance().resize(restore);
}

TEST(FoldConstants, DegenerateLayersCollapseAndOutputsMatch)
{
    auto build = [] {
        Graph g("m");
        const int in = g.addInput("input", {1, 4, 8, 8});
        Layer pool;
        pool.name = "unit_pool";
        pool.kind = LayerKind::MaxPool;
        pool.inputs = {in};
        const int p = g.addLayer(pool);
        Layer resize;
        resize.name = "same_size";
        resize.kind = LayerKind::Interpolate;
        resize.attrs.outH = 8;
        resize.attrs.outW = 8;
        resize.inputs = {p};
        const int r = g.addLayer(resize);
        Layer cat;
        cat.name = "lone_concat";
        cat.kind = LayerKind::Concat;
        cat.attrs.outChannels = 4;
        cat.inputs = {r};
        const int cc = g.addLayer(cat);
        g.markOutput(g.addLayer(conv("head", cc, 4, 2)));
        return g;
    };

    Graph plain = build();
    Graph folded = build();
    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> report = pipeline.run(folded);
    ASSERT_TRUE(report) << report.status().message();

    // All three no-ops vanish; the head reads the input directly.
    EXPECT_EQ(folded.numLayers(), 2u);
    EXPECT_EQ(folded.layer(folded.findLayer("head")).inputs[0],
              folded.findLayer("input"));

    WeightStore store;
    Executor ex_plain(plain, 5, &store);
    Executor ex_folded(folded, 5, &store);
    Rng rng(11);
    const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
    Tensor a = ex_plain.run({{"input", x}}).at("head");
    Tensor b = ex_folded.run({{"input", x}}).at("head");
    EXPECT_EQ(
        std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()), 0);
}

TEST(DeadLayerElim, DropsUnreachableButKeepsSanctioned)
{
    Graph g("m");
    const int in = g.addInput("input", {1, 4, 8, 8});
    g.addLayer(conv("junk", in, 4, 6));
    g.addLayer(conv("cost_only_proxy", in, 4, 6));
    g.markOutput(g.addLayer(conv("head", in, 4, 2)));

    PassOptions options;
    // The suppression both silences the unreachable-layer lint and
    // shields the layer from elimination.
    options.lint.suppressions = {{"graph.unreachable", "cost_only"}};
    PassManager pipeline = PassManager::standardPipeline(options);
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_TRUE(report) << report.status().message();

    EXPECT_EQ(g.findLayer("junk"), -1);
    EXPECT_GE(g.findLayer("cost_only_proxy"), 0);
    EXPECT_GE(g.findLayer("head"), 0);
    int dce = 0;
    for (const PassStats &stats : report.value().passes)
        if (stats.pass == "dead-layer-elim")
            dce = stats.rewrites;
    EXPECT_EQ(dce, 1);
}

TEST(InplacePriority, AnnotatesSoleConsumerElementwise)
{
    Graph g("m");
    const int in = g.addInput("input", {1, 4, 8, 8});
    const int c = g.addLayer(conv("conv", in, 4, 6));
    const int r = g.addLayer(unary("gelu", LayerKind::GELU, c));
    Layer add;
    add.name = "self_add";
    add.kind = LayerKind::Add;
    add.inputs = {r, r};
    g.markOutput(g.addLayer(add));

    // Run only the annotation pass: the fusion pass would otherwise
    // absorb the GELU into the conv first.
    PassManager pipeline;
    ASSERT_TRUE(pipeline.addByName("inplace-priority"));
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_TRUE(report) << report.status().message();
    EXPECT_EQ(report.value().totalRewrites(), 2);
    EXPECT_GT(g.layer(g.findLayer("gelu")).inplacePriority, 0);
    // Add(x, x) consumes its producer twice but from one layer, so it
    // still qualifies.
    EXPECT_GT(g.layer(g.findLayer("self_add")).inplacePriority, 0);
}

TEST(InplacePriority, ExecutorReusesBuffersAndStaysBitIdentical)
{
    auto build = [] {
        // Small input, wide intermediates: the unfused peak is two
        // coexisting wide tensors (producer + fresh output), the
        // in-place peak only ever holds one wide tensor plus the
        // narrow input.
        Graph g("m");
        const int in = g.addInput("input", {1, 2, 16, 16});
        const int c = g.addLayer(conv("conv", in, 2, 8));
        const int b = g.addLayer(batchnorm("bn", c, 8));
        const int r = g.addLayer(unary("gelu", LayerKind::GELU, b));
        Layer add;
        add.name = "residual";
        add.kind = LayerKind::Add;
        add.inputs = {r, r};
        g.markOutput(g.addLayer(add));
        return g;
    };

    Graph plain = build();
    Graph annotated = build();
    PassManager pipeline;
    ASSERT_TRUE(pipeline.addByName("inplace-priority"));
    ASSERT_TRUE(pipeline.run(annotated));

    WeightStore store;
    Executor ex_plain(plain, 9, &store);
    Executor ex_annotated(annotated, 9, &store);
    Rng rng(13);
    const Tensor x = Tensor::randn({1, 2, 16, 16}, rng);

    Counter &reuses =
        MetricsRegistry::instance().counter("executor.inplace_reuses");
    const uint64_t reuses_before = reuses.value();
    Tensor a = ex_plain.run({{"input", x}}).at("residual");
    EXPECT_EQ(reuses.value(), reuses_before);
    Tensor b = ex_annotated.run({{"input", x}}).at("residual");
    EXPECT_GE(reuses.value(), reuses_before + 3u);

    EXPECT_EQ(
        std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()), 0);
    // Every elementwise step overwrote its producer instead of
    // allocating: peak live activation memory must shrink.
    EXPECT_LT(ex_annotated.lastRunStats().peakLiveBytes,
              ex_plain.lastRunStats().peakLiveBytes);
}

/** A pass that corrupts the graph and claims success. */
class VandalPass : public Pass
{
  public:
    VandalPass()
        : Pass("vandal")
    {
    }

    Result<int> run(Graph &graph, const PassOptions &) const override
    {
        // Lie about a shape: the lint shape-flow cross-check re-derives
        // every stored shape, so this cannot slip through the gate.
        graph.layer(static_cast<int>(graph.numLayers()) - 1)
            .outShape[1] += 1;
        return 1;
    }
};

TEST(PassManager, LintGateRejectsCorruptingPassAndKeepsGraph)
{
    Graph g = convBnReluGraph();
    const std::string before = g.toString();

    PassManager pipeline;
    pipeline.add(std::make_unique<VandalPass>());
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_FALSE(report);
    EXPECT_NE(report.status().message().find("vandal"),
              std::string::npos)
        << report.status().message();
    EXPECT_EQ(g.toString(), before);
}

TEST(PassManager, RejectsGraphThatArrivesBroken)
{
    Graph g = convBnReluGraph();
    g.layer(g.findLayer("head")).outShape[1] += 1;

    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_FALSE(report);
    EXPECT_NE(report.status().message().find("input graph"),
              std::string::npos)
        << report.status().message();
}

TEST(PassManager, AddByNameRejectsUnknown)
{
    PassManager pipeline;
    Status added = pipeline.addByName("no-such-pass");
    EXPECT_FALSE(added);
    EXPECT_EQ(pipeline.numPasses(), 0u);

    for (const std::string &name : registeredPassNames())
        EXPECT_TRUE(pipeline.addByName(name));
    EXPECT_EQ(pipeline.numPasses(), registeredPassNames().size());
    EXPECT_EQ(makePass("no-such-pass"), nullptr);
}

TEST(PassManager, RealModelsRewriteCleanWithInvariantTotals)
{
    struct Case
    {
        const char *name;
        Graph graph;
    };
    Case cases[] = {
        {"segformer_b0", buildSegformer(segformerB0Config())},
        {"resnet50", buildResnet(ResnetConfig{})},
    };
    for (Case &c : cases) {
        const int64_t flops = c.graph.totalFlops();
        const int64_t params = c.graph.totalParams();
        const size_t layers = c.graph.numLayers();
        PassManager pipeline = PassManager::standardPipeline();
        Result<PipelineReport> report = pipeline.run(c.graph);
        ASSERT_TRUE(report) << c.name << ": "
                            << report.status().message();
        EXPECT_GT(report.value().totalRewrites(), 0) << c.name;
        EXPECT_LT(c.graph.numLayers(), layers) << c.name;
        EXPECT_EQ(c.graph.totalFlops(), flops) << c.name;
        EXPECT_EQ(c.graph.totalParams(), params) << c.name;
        EXPECT_FALSE(lintGraph(c.graph).hasErrors()) << c.name;
    }
}

} // namespace
} // namespace vitdyn
