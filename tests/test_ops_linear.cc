/** @file Tests of linear / matmul / attention reference kernels. */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Linear, HandComputed)
{
    // y = x W^T + b with x = [1, 2], W = [[1, 1], [2, -1]], b = [0, 1].
    Tensor x({1, 2}, std::vector<float>{1, 2});
    Tensor w({2, 2}, std::vector<float>{1, 1, 2, -1});
    Tensor b({2}, std::vector<float>{0, 1});
    Tensor y = linear(x, w, b);
    EXPECT_FLOAT_EQ(y.at2(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(y.at2(0, 1), 1.0f);
}

TEST(Linear, BroadcastsOverLeadingDims)
{
    Rng rng(2);
    Tensor x = Tensor::randn({2, 3, 4}, rng);
    Tensor w = Tensor::randn({5, 4}, rng);
    Tensor y = linear(x, w, Tensor{});
    EXPECT_EQ(y.shape(), (Shape{2, 3, 5}));

    // Row (1, 2) equals the rank-2 computation on that row.
    Tensor row({1, 4});
    for (int64_t i = 0; i < 4; ++i)
        row[i] = x.at3(1, 2, i);
    Tensor yr = linear(row, w, Tensor{});
    for (int64_t o = 0; o < 5; ++o)
        EXPECT_NEAR(y.at3(1, 2, o), yr[o], 1e-4f);
}

TEST(Linear, FeatureMismatchPanics)
{
    Tensor x({1, 3});
    Tensor w({2, 4});
    EXPECT_DEATH(linear(x, w, Tensor{}), "in_features");
}

TEST(Matmul, Identity)
{
    Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
    Tensor eye({2, 2}, std::vector<float>{1, 0, 0, 1});
    EXPECT_TRUE(matmul(a, eye).allClose(a));
    EXPECT_TRUE(matmul(eye, a).allClose(a));
}

TEST(Matmul, HandComputed)
{
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, AgreesWithLinear)
{
    // x W^T computed both ways.
    Rng rng(4);
    Tensor x = Tensor::randn({3, 8}, rng);
    Tensor w = Tensor::randn({5, 8}, rng);
    Tensor wt({8, 5});
    for (int64_t i = 0; i < 5; ++i)
        for (int64_t j = 0; j < 8; ++j)
            wt.at2(j, i) = w.at2(i, j);
    EXPECT_TRUE(matmul(x, wt).allClose(linear(x, w, Tensor{}), 1e-4f));
}

TEST(Bmm, MatchesPerBatchMatmul)
{
    Rng rng(6);
    Tensor a = Tensor::randn({3, 4, 5}, rng);
    Tensor b = Tensor::randn({3, 5, 2}, rng);
    Tensor c = bmm(a, b);
    EXPECT_EQ(c.shape(), (Shape{3, 4, 2}));
    for (int64_t bb = 0; bb < 3; ++bb) {
        Tensor a2({4, 5});
        Tensor b2({5, 2});
        for (int64_t i = 0; i < 20; ++i)
            a2[i] = a[bb * 20 + i];
        for (int64_t i = 0; i < 10; ++i)
            b2[i] = b[bb * 10 + i];
        Tensor c2 = matmul(a2, b2);
        for (int64_t i = 0; i < 8; ++i)
            EXPECT_NEAR(c[bb * 8 + i], c2[i], 1e-4f);
    }
}

TEST(Attention, UniformWhenQueryIsZero)
{
    // Zero queries give uniform attention: output = mean of V.
    Tensor q({1, 2, 4}, 0.0f);
    Rng rng(9);
    Tensor k = Tensor::randn({1, 3, 4}, rng);
    Tensor v = Tensor::randn({1, 3, 4}, rng);
    Tensor out = attention(q, k, v, 1);
    for (int64_t d = 0; d < 4; ++d) {
        float mean = 0.0f;
        for (int64_t j = 0; j < 3; ++j)
            mean += v.at3(0, j, d);
        mean /= 3.0f;
        EXPECT_NEAR(out.at3(0, 0, d), mean, 1e-4f);
        EXPECT_NEAR(out.at3(0, 1, d), mean, 1e-4f);
    }
}

TEST(Attention, SharpSelectionPicksMatchingValue)
{
    // With a huge matching key, attention selects that value row.
    Tensor q({1, 1, 2}, std::vector<float>{50.0f, 0.0f});
    Tensor k({1, 2, 2}, std::vector<float>{1.0f, 0.0f, -1.0f, 0.0f});
    Tensor v({1, 2, 2}, std::vector<float>{7.0f, 8.0f, -3.0f, -4.0f});
    Tensor out = attention(q, k, v, 1);
    EXPECT_NEAR(out.at3(0, 0, 0), 7.0f, 1e-3f);
    EXPECT_NEAR(out.at3(0, 0, 1), 8.0f, 1e-3f);
}

TEST(Attention, MultiHeadPartitionsChannels)
{
    // With 2 heads, head 0 only mixes dims [0, dh) of V.
    Rng rng(10);
    Tensor q = Tensor::randn({1, 4, 8}, rng);
    Tensor k = Tensor::randn({1, 4, 8}, rng);
    Tensor v = Tensor::randn({1, 4, 8}, rng);
    Tensor out2 = attention(q, k, v, 2);

    // Changing V in head-1 channels must not affect head-0 outputs.
    Tensor v2 = v;
    for (int64_t j = 0; j < 4; ++j)
        for (int64_t d = 4; d < 8; ++d)
            v2.at3(0, j, d) += 100.0f;
    Tensor out2b = attention(q, k, v2, 2);
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t d = 0; d < 4; ++d)
            EXPECT_NEAR(out2.at3(0, i, d), out2b.at3(0, i, d), 1e-4f);
}

TEST(Attention, CrossAttentionLengths)
{
    Rng rng(12);
    Tensor q = Tensor::randn({2, 5, 8}, rng);
    Tensor k = Tensor::randn({2, 9, 8}, rng);
    Tensor v = Tensor::randn({2, 9, 8}, rng);
    Tensor out = attention(q, k, v, 4);
    EXPECT_EQ(out.shape(), (Shape{2, 5, 8}));
}

TEST(Attention, HeadDivisibilityPanics)
{
    Tensor q({1, 2, 6});
    EXPECT_DEATH(attention(q, q, q, 4), "divisible");
}

} // namespace
} // namespace vitdyn
