/**
 * @file
 * Parity tests for the ISA-dispatched SIMD microkernels
 * (tensor/kernels/) and the measured conv-plan autotuner.
 *
 * The contract under test (kernels.hh file comment): every "exact"
 * kernel flavor is memcmp-identical to the scalar reference for any
 * blocking, any remainder length and any thread count; the "fma"
 * flavors deviate by a documented ULP bound; integer kernels are
 * identical unconditionally. When the suite runs under
 * VITDYN_ISA=scalar (the CI matrix's other leg) the comparisons are
 * scalar-vs-scalar and must still hold trivially.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "graph/executor.hh"
#include "obs/metrics.hh"
#include "tensor/kernels/conv_autotune.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/ops.hh"
#include "tensor/quant.hh"
#include "util/random.hh"
#include "util/threadpool.hh"

namespace vitdyn
{
namespace
{

/** Restore the global pool size when a test returns or fails. */
struct PoolSizeGuard
{
    explicit PoolSizeGuard(int threads)
    {
        ThreadPool::instance().resize(threads);
    }
    ~PoolSizeGuard() { ThreadPool::instance().resize(0); }
};

bool
bitEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

bool
bitEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) * a.numel()) == 0;
}

TEST(Isa, NamesRoundTrip)
{
    IsaLevel isa = IsaLevel::Avx2;
    EXPECT_TRUE(parseIsaName("scalar", &isa));
    EXPECT_EQ(isa, IsaLevel::Scalar);
    EXPECT_STREQ(isaName(IsaLevel::Scalar), "scalar");
    EXPECT_TRUE(parseIsaName("avx2", &isa));
    EXPECT_EQ(isa, IsaLevel::Avx2);
    EXPECT_STREQ(isaName(IsaLevel::Avx2), "avx2");
    EXPECT_TRUE(parseIsaName("neon", &isa));
    EXPECT_EQ(isa, IsaLevel::Neon);
    EXPECT_STREQ(isaName(IsaLevel::Neon), "neon");
}

TEST(Isa, NativeAndAutoSelectDetection)
{
    IsaLevel isa = IsaLevel::Scalar;
    EXPECT_TRUE(parseIsaName("native", &isa));
    EXPECT_EQ(isa, detectBestIsa());
    EXPECT_TRUE(parseIsaName("auto", &isa));
    EXPECT_EQ(isa, detectBestIsa());
}

TEST(Isa, UnknownTokenRejectedAndOutUntouched)
{
    IsaLevel isa = IsaLevel::Neon;
    EXPECT_FALSE(parseIsaName("avx512", &isa));
    EXPECT_EQ(isa, IsaLevel::Neon);
}

TEST(Isa, ScalarAlwaysAvailableAndDetectionConsistent)
{
    EXPECT_TRUE(isaAvailable(IsaLevel::Scalar));
    EXPECT_TRUE(isaAvailable(detectBestIsa()));
    // Unavailable ISAs must still yield a safe (scalar) kernel set.
    for (IsaLevel isa :
         {IsaLevel::Scalar, IsaLevel::Avx2, IsaLevel::Neon}) {
        const Microkernels &mk = kernelsFor(isa);
        ASSERT_NE(mk.gemmTileExact, nullptr);
        ASSERT_NE(mk.gemmTileFma, nullptr);
        ASSERT_NE(mk.axpyF32, nullptr);
        ASSERT_NE(mk.dotS8, nullptr);
        ASSERT_NE(mk.quantizeF32S8, nullptr);
        ASSERT_NE(mk.dequantizeS8F32, nullptr);
        if (!isaAvailable(isa))
            EXPECT_EQ(mk.isa, IsaLevel::Scalar);
    }
    EXPECT_EQ(activeKernels().isa, activeIsa());
}

/** Deterministic value mix including negatives and magnitudes. */
float
mixedValue(int64_t i)
{
    const float base =
        static_cast<float>((i * 2654435761u) % 2001) / 1000.0f - 1.0f;
    return base * (1.0f + static_cast<float>(i % 7));
}

TEST(GemmTile, ExactBitIdenticalToScalarAcrossBlockings)
{
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const Microkernels &simd = kernelsFor(detectBestIsa());

    // Remainder coverage: jb spans sub-lane, one-lane, lane+tail and
    // the max block; kb spans the 4-row inner blocking and its tails.
    const int64_t kbs[] = {1, 2, 3, 4, 5, 9};
    const int64_t jbs[] = {1, 5, 8, 15, 16, 17, 31, 33, 512};
    const int64_t lens[] = {1, 7, 32, 100};

    for (int64_t kb : kbs)
        for (int64_t jb : jbs)
            for (int64_t len : lens) {
                std::vector<float> w(kb * len), col(len * jb);
                std::vector<float> bias(kb);
                for (size_t i = 0; i < w.size(); ++i)
                    w[i] = mixedValue(i);
                for (size_t i = 0; i < col.size(); ++i)
                    col[i] = mixedValue(i + 31);
                for (size_t i = 0; i < bias.size(); ++i)
                    bias[i] = mixedValue(i + 77);

                std::vector<float> ref(kb * jb, -9.0f);
                std::vector<float> out(kb * jb, 9.0f);
                scalar.gemmTileExact(w.data(), len, col.data(), jb,
                                     bias.data(), ref.data(), jb, kb,
                                     jb, len);
                simd.gemmTileExact(w.data(), len, col.data(), jb,
                                   bias.data(), out.data(), jb, kb, jb,
                                   len);
                EXPECT_TRUE(bitEqual(ref, out))
                    << "kb=" << kb << " jb=" << jb << " len=" << len;

                // Null bias must read as zero on both.
                scalar.gemmTileExact(w.data(), len, col.data(), jb,
                                     nullptr, ref.data(), jb, kb, jb,
                                     len);
                simd.gemmTileExact(w.data(), len, col.data(), jb,
                                   nullptr, out.data(), jb, kb, jb,
                                   len);
                EXPECT_TRUE(bitEqual(ref, out))
                    << "nobias kb=" << kb << " jb=" << jb
                    << " len=" << len;
            }
}

TEST(GemmTile, ExactHonorsLeadingDimensions)
{
    // Strided output/column/weight views (ld > logical width) must
    // leave the gaps untouched and match the scalar reference.
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const Microkernels &simd = kernelsFor(detectBestIsa());
    const int64_t kb = 3, jb = 19, len = 11;
    const int64_t ldw = len + 3, ldc = jb + 5, ldo = jb + 2;
    std::vector<float> w(kb * ldw), col(len * ldc), bias(kb);
    for (size_t i = 0; i < w.size(); ++i)
        w[i] = mixedValue(i + 5);
    for (size_t i = 0; i < col.size(); ++i)
        col[i] = mixedValue(i + 13);
    for (size_t i = 0; i < bias.size(); ++i)
        bias[i] = mixedValue(i + 99);
    std::vector<float> ref(kb * ldo, 42.0f), out(kb * ldo, 42.0f);
    scalar.gemmTileExact(w.data(), ldw, col.data(), ldc, bias.data(),
                         ref.data(), ldo, kb, jb, len);
    simd.gemmTileExact(w.data(), ldw, col.data(), ldc, bias.data(),
                       out.data(), ldo, kb, jb, len);
    EXPECT_TRUE(bitEqual(ref, out));
    // Gap columns beyond jb kept their sentinel.
    for (int64_t i = 0; i < kb; ++i)
        for (int64_t j = jb; j < ldo; ++j)
            EXPECT_EQ(out[i * ldo + j], 42.0f);
}

TEST(GemmTile, FmaWithinDocumentedUlpBound)
{
    const Microkernels &mk = kernelsFor(detectBestIsa());
    const int64_t kb = 4, jb = 33, len = 64;
    std::vector<float> w(kb * len), col(len * jb), bias(kb);
    for (size_t i = 0; i < w.size(); ++i)
        w[i] = mixedValue(i);
    for (size_t i = 0; i < col.size(); ++i)
        col[i] = mixedValue(i + 17);
    for (size_t i = 0; i < bias.size(); ++i)
        bias[i] = mixedValue(i + 3);
    std::vector<float> exact(kb * jb), fma(kb * jb);
    mk.gemmTileExact(w.data(), len, col.data(), jb, bias.data(),
                     exact.data(), jb, kb, jb, len);
    mk.gemmTileFma(w.data(), len, col.data(), jb, bias.data(),
                   fma.data(), jb, kb, jb, len);
    const float eps = std::numeric_limits<float>::epsilon();
    for (int64_t i = 0; i < kb; ++i)
        for (int64_t j = 0; j < jb; ++j) {
            double mag = std::fabs(bias[i]);
            for (int64_t l = 0; l < len; ++l)
                mag += std::fabs(double(w[i * len + l]) *
                                 col[l * jb + j]);
            const double bound = double(len) * eps * mag;
            EXPECT_LE(std::fabs(double(fma[i * jb + j]) -
                                exact[i * jb + j]),
                      bound)
                << "i=" << i << " j=" << j;
        }
}

TEST(Axpy, BitIdenticalToScalarIncludingSpecials)
{
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const Microkernels &simd = kernelsFor(detectBestIsa());
    const int64_t ns[] = {1, 3, 7, 8, 9, 16, 33, 1000};
    for (int64_t n : ns) {
        std::vector<float> x(n), ref(n), out(n);
        for (int64_t i = 0; i < n; ++i) {
            x[i] = mixedValue(i + 7);
            ref[i] = out[i] = mixedValue(i + 23);
        }
        // Specials must round-trip identically (NaN payload aside —
        // mul/add propagate the same canonical NaN on both paths).
        if (n >= 8) {
            x[1] = -0.0f;
            x[2] = std::numeric_limits<float>::infinity();
            x[3] = -std::numeric_limits<float>::infinity();
        }
        for (float a : {0.5f, -2.25f, 0.0f, -0.0f}) {
            std::vector<float> r = ref, o = out;
            scalar.axpyF32(a, x.data(), r.data(), n);
            simd.axpyF32(a, x.data(), o.data(), n);
            EXPECT_TRUE(bitEqual(r, o)) << "n=" << n << " a=" << a;
        }
    }
}

TEST(DotS8, ExactAcrossLengthsAndFlushBoundary)
{
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const Microkernels &simd = kernelsFor(detectBestIsa());
    // 262144 = 8192 steps * 32 lanes: crosses the int32->int64 flush
    // boundary of the AVX2 kernel; +35 adds a scalar tail.
    const int64_t ns[] = {1, 31, 32, 33, 100, 8192 * 32 + 35};
    for (int64_t n : ns) {
        std::vector<int8_t> a(n), b(n);
        for (int64_t i = 0; i < n; ++i) {
            // Full range incl. -128, worst-case same-sign products.
            a[i] = static_cast<int8_t>((i * 37 + 11) % 256 - 128);
            b[i] = static_cast<int8_t>((i * 73 + 5) % 256 - 128);
        }
        EXPECT_EQ(scalar.dotS8(a.data(), b.data(), n),
                  simd.dotS8(a.data(), b.data(), n))
            << "n=" << n;
    }
    // Saturation worst case: every product is (-128)*(-128).
    {
        const int64_t n = 8192 * 32;
        std::vector<int8_t> a(n, -128), b(n, -128);
        EXPECT_EQ(scalar.dotS8(a.data(), b.data(), n),
                  simd.dotS8(a.data(), b.data(), n));
        EXPECT_EQ(simd.dotS8(a.data(), b.data(), n),
                  int64_t{16384} * n);
    }
}

TEST(Quantize, BitIdenticalToScalarIncludingEdgeCases)
{
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const Microkernels &simd = kernelsFor(detectBestIsa());
    const float inf = std::numeric_limits<float>::infinity();
    std::vector<float> x = {
        0.0f,    -0.0f,  0.5f,    -0.5f,   1.5f,   -1.5f,  2.5f,
        -2.5f,   126.5f, -126.5f, 127.49f, 200.0f, -200.0f, 1e30f,
        -1e30f,  inf,    -inf,    std::nanf(""),   -std::nanf(""),
        0.49999997f,     -0.49999997f,    126.9f, -126.9f, 63.5f,
        -63.5f,  0.25f,  3.49f,   -3.51f,  99.5f,  -99.5f, 11.5f};
    // Pad to exercise both the 8-wide body and the scalar tail.
    for (int64_t i = 0; x.size() < 67; ++i)
        x.push_back(mixedValue(i) * 150.0f);

    for (float inv_scale : {1.0f, 0.37f, 12.75f}) {
        std::vector<int8_t> ref(x.size(), 55), out(x.size(), -55);
        scalar.quantizeF32S8(x.data(), inv_scale, ref.data(),
                             static_cast<int64_t>(x.size()));
        simd.quantizeF32S8(x.data(), inv_scale, out.data(),
                           static_cast<int64_t>(x.size()));
        for (size_t i = 0; i < x.size(); ++i)
            EXPECT_EQ(ref[i], out[i])
                << "x=" << x[i] << " inv_scale=" << inv_scale;
    }
}

TEST(Quantize, ScalarReferenceSemantics)
{
    // Pin the semantics the SIMD kernels emulate: half-away-from-zero
    // rounding, clamp to [-127, 127], NaN -> 127 (std::min(127, NaN)
    // returns its first argument).
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const float inf = std::numeric_limits<float>::infinity();
    const std::vector<float> x = {0.5f,  -0.5f, 1.5f, 200.0f, -200.0f,
                                  inf,   -inf,  std::nanf(""), -0.0f};
    std::vector<int8_t> q(x.size());
    scalar.quantizeF32S8(x.data(), 1.0f, q.data(),
                         static_cast<int64_t>(x.size()));
    const int8_t expect[] = {1, -1, 2, 127, -127, 127, -127, 127, 0};
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(q[i], expect[i]) << "x=" << x[i];
}

TEST(Dequantize, BitIdenticalToScalarOverAllInt8Values)
{
    const Microkernels &scalar = kernelsFor(IsaLevel::Scalar);
    const Microkernels &simd = kernelsFor(detectBestIsa());
    std::vector<int8_t> q(256 + 5); // all values + tail remainder
    for (size_t i = 0; i < q.size(); ++i)
        q[i] = static_cast<int8_t>(i % 256 - 128);
    std::vector<float> ref(q.size()), out(q.size());
    scalar.dequantizeS8F32(q.data(), 0.0371f, ref.data(),
                           static_cast<int64_t>(q.size()));
    simd.dequantizeS8F32(q.data(), 0.0371f, out.data(),
                         static_cast<int64_t>(q.size()));
    EXPECT_TRUE(bitEqual(ref, out));
}

// ---------------------------------------------------------------------
// Op-level parity: the dispatched SIMD paths inside conv2d / linear /
// matmul / quant must be memcmp-identical to their scalar-contract
// outputs at multiple thread counts.
// ---------------------------------------------------------------------

class OpParityTest : public testing::TestWithParam<int> {};

TEST_P(OpParityTest, ConvPlansBitIdenticalAcrossIsaAndBlocking)
{
    PoolSizeGuard guard(GetParam());
    Rng rng(41);
    Tensor x = Tensor::randn({2, 12, 13, 13}, rng);
    Tensor w = Tensor::randn({16, 12, 3, 3}, rng);
    Tensor b = Tensor::randn({16}, rng);
    Conv2dParams p;
    p.padH = p.padW = 1;

    Tensor direct = conv2d(x, w, b, p, Conv2dAlgo::Direct);
    for (IsaLevel isa : {IsaLevel::Scalar, detectBestIsa()}) {
        for (int64_t block : {1, 33, 64, 128, 512}) {
            Conv2dPlan plan;
            plan.algo = Conv2dAlgo::Im2col;
            plan.colBlock = block;
            plan.isa = isa;
            Tensor y = conv2d(x, w, b, p, plan);
            EXPECT_TRUE(bitEqual(direct, y))
                << "isa=" << isaName(isa) << " block=" << block
                << " threads=" << GetParam();
        }
    }
}

TEST_P(OpParityTest, ConvFmaPlanWithinUlpBound)
{
    PoolSizeGuard guard(GetParam());
    Rng rng(43);
    Tensor x = Tensor::randn({1, 8, 10, 10}, rng);
    Tensor w = Tensor::randn({8, 8, 3, 3}, rng);
    Conv2dParams p;
    p.padH = p.padW = 1;
    Conv2dPlan exact;
    exact.algo = Conv2dAlgo::Im2col;
    exact.isa = detectBestIsa();
    Tensor ye = conv2d(x, w, Tensor{}, p, exact);
    Conv2dPlan fma = exact;
    fma.fma = true;
    Tensor yf = conv2d(x, w, Tensor{}, p, fma);
    ASSERT_EQ(ye.shape(), yf.shape());
    // len = 8*3*3 = 72 accumulation steps; inputs are O(1), so the
    // documented bound is comfortably inside 1e-3 absolute here.
    for (int64_t i = 0; i < ye.numel(); ++i)
        EXPECT_NEAR(ye[i], yf[i], 1e-3f);
}

TEST_P(OpParityTest, LinearBitIdenticalToScalarContract)
{
    PoolSizeGuard guard(GetParam());
    Rng rng(47);
    // rows >= 4 and out_f >= 8 so the packed-axpy path engages on
    // SIMD ISAs.
    Tensor x = Tensor::randn({3, 5, 24}, rng);
    Tensor w = Tensor::randn({17, 24}, rng);
    Tensor b = Tensor::randn({17}, rng);
    Tensor y = linear(x, w, b);

    // Scalar contract: y[r][o] = b[o] + sum over ascending i of
    // x[r][i] * w[o][i], mul and add rounded separately.
    ASSERT_EQ(y.shape(), (Shape{3, 5, 17}));
    const int64_t rows = 15, in_f = 24, out_f = 17;
    std::vector<float> ref(rows * out_f);
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t o = 0; o < out_f; ++o) {
            float acc = b[o];
            for (int64_t i = 0; i < in_f; ++i)
                acc += x[r * in_f + i] * w[o * in_f + i];
            ref[r * out_f + o] = acc;
        }
    EXPECT_EQ(std::memcmp(ref.data(), y.data(),
                          sizeof(float) * ref.size()),
              0);
}

TEST_P(OpParityTest, MatmulBmmBitIdenticalToScalarContract)
{
    PoolSizeGuard guard(GetParam());
    Rng rng(53);
    Tensor a = Tensor::randn({9, 11}, rng);
    Tensor c = Tensor::randn({11, 21}, rng);
    // Zeros in A exercise the preserved skip path.
    for (int64_t i = 0; i < a.numel(); i += 5)
        a[i] = 0.0f;
    a[3] = -0.0f;
    Tensor y = matmul(a, c);
    std::vector<float> ref(9 * 21, 0.0f);
    for (int64_t i = 0; i < 9; ++i)
        for (int64_t l = 0; l < 11; ++l) {
            const float av = a[i * 11 + l];
            if (av == 0.0f)
                continue;
            for (int64_t j = 0; j < 21; ++j)
                ref[i * 21 + j] += av * c[l * 21 + j];
        }
    EXPECT_EQ(std::memcmp(ref.data(), y.data(),
                          sizeof(float) * ref.size()),
              0);

    Tensor ab = Tensor::randn({2, 6, 7}, rng);
    Tensor cb = Tensor::randn({2, 7, 9}, rng);
    Tensor yb = bmm(ab, cb);
    std::vector<float> refb(2 * 6 * 9, 0.0f);
    for (int64_t n = 0; n < 2; ++n)
        for (int64_t i = 0; i < 6; ++i)
            for (int64_t l = 0; l < 7; ++l) {
                const float av = ab[(n * 6 + i) * 7 + l];
                if (av == 0.0f)
                    continue;
                for (int64_t j = 0; j < 9; ++j)
                    refb[(n * 6 + i) * 9 + j] +=
                        av * cb[(n * 7 + l) * 9 + j];
            }
    EXPECT_EQ(std::memcmp(refb.data(), yb.data(),
                          sizeof(float) * refb.size()),
              0);
}

TEST_P(OpParityTest, QuantOpsMatchElementwiseReference)
{
    PoolSizeGuard guard(GetParam());
    Rng rng(59);
    Tensor x = Tensor::randn({3, 1000}, rng);
    QuantTensor q = quantize(x);
    const float inv = 1.0f / q.scale;
    for (int64_t i = 0; i < x.numel(); ++i) {
        const float v = std::round(x[i] * inv);
        const auto expect = static_cast<int8_t>(
            std::max(-127.0f, std::min(127.0f, v)));
        ASSERT_EQ(q.data[i], expect) << "i=" << i;
    }
    Tensor back = dequantize(q);
    for (int64_t i = 0; i < x.numel(); ++i)
        ASSERT_EQ(back[i], static_cast<float>(q.data[i]) * q.scale);
}

INSTANTIATE_TEST_SUITE_P(Threads, OpParityTest, testing::Values(1, 4));

TEST(QuantConvKernels, Int8GemmPathMatchesDirectExactly)
{
    // Force the int8 im2col GEMM path (flops over threshold) and pit
    // it against the direct path on a smaller clone of the same
    // problem; both integer-accumulate, so equal inputs give equal
    // int64 sums and a bitwise-equal float epilogue.
    PoolSizeGuard guard(4);
    Rng rng(61);
    Tensor x = Tensor::randn({2, 8, 14, 14}, rng);
    Tensor w = Tensor::randn({16, 8, 3, 3}, rng, 0.0f, 0.2f);
    Tensor b = Tensor::randn({16}, rng, 0.0f, 0.05f);
    Conv2dParams p;
    p.padH = p.padW = 1;
    QuantTensor qx = quantize(x);
    QuantTensor qw = quantize(w);
    Tensor seq, par;
    {
        PoolSizeGuard g1(1);
        seq = conv2dInt8(qx, qw, b, p);
    }
    par = conv2dInt8(qx, qw, b, p);
    EXPECT_TRUE(bitEqual(seq, par));

    // Grouped int8 stays on the direct path and matches the fp32
    // grouped conv within quantization error.
    Conv2dParams gp;
    gp.groups = 2;
    gp.padH = gp.padW = 1;
    Tensor wg = Tensor::randn({16, 4, 3, 3}, rng, 0.0f, 0.2f);
    Tensor refg = conv2d(dequantize(qx), dequantize(quantize(wg)),
                         Tensor{}, gp);
    Tensor qyg = conv2dInt8(qx, quantize(wg), Tensor{}, gp);
    EXPECT_LT(meanAbsError(refg, qyg), 1e-4);
}

// ---------------------------------------------------------------------
// Conv dispatch bugfixes.
// ---------------------------------------------------------------------

TEST(ConvDispatch, GroupedIm2colRequestDegradesToDirect)
{
    // Bugfix: an explicit Conv2dAlgo::Im2col with groups > 1 used to
    // hard-abort through vitdyn_assert. It must now fall back to the
    // direct path, count the fallback, and return the exact direct
    // result.
    Rng rng(67);
    Tensor x = Tensor::randn({1, 6, 9, 9}, rng);
    Tensor w = Tensor::randn({9, 2, 3, 3}, rng);
    Conv2dParams p;
    p.groups = 3;
    p.padH = p.padW = 1;
    Counter &fallbacks = MetricsRegistry::instance().counter(
        "conv.im2col_grouped_fallback");
    const uint64_t before = fallbacks.value();
    Tensor direct = conv2d(x, w, Tensor{}, p, Conv2dAlgo::Direct);
    Tensor gemm = conv2d(x, w, Tensor{}, p, Conv2dAlgo::Im2col);
    EXPECT_TRUE(bitEqual(direct, gemm));
    EXPECT_GT(fallbacks.value(), before);
}

TEST(ConvDispatch, AutotunerNeverEnumeratesGroupedIm2col)
{
    Conv2dShapeKey key;
    key.n = 2;
    key.c = 32;
    key.h = key.w = 28;
    key.k = 32;
    key.r = key.s = 3;
    key.padH = key.padW = 1;
    key.groups = 4;
    ConvAutotuneOptions opts;
    opts.enabled = true;
    for (const Conv2dPlan &plan : enumerateConvPlans(key, opts))
        EXPECT_NE(plan.algo, Conv2dAlgo::Im2col);
    // The ungrouped twin does get Im2col candidates.
    key.groups = 1;
    bool has_im2col = false;
    for (const Conv2dPlan &plan : enumerateConvPlans(key, opts))
        has_im2col |= plan.algo == Conv2dAlgo::Im2col;
    EXPECT_TRUE(has_im2col);
}

TEST(ConvDispatch, NullWorkspaceUsesThreadLocalFallback)
{
    // Bugfix: a null workspace used to allocate and free a fresh
    // Conv2dWorkspace every call. The thread-local fallback must (a)
    // count misses, (b) stay correct when consecutive calls use
    // *different* weight tensors of the same shape — a stale packed
    // weight would silently corrupt the second result.
    Rng rng(71);
    Tensor x = Tensor::randn({1, 16, 12, 12}, rng);
    Tensor w1 = Tensor::randn({24, 16, 3, 3}, rng);
    Tensor w2 = Tensor::randn({24, 16, 3, 3}, rng);
    Conv2dParams p;
    p.padH = p.padW = 1;

    Counter &misses =
        MetricsRegistry::instance().counter("conv.workspace_miss");
    const uint64_t before = misses.value();
    Tensor ref1 = conv2d(x, w1, Tensor{}, p, Conv2dAlgo::Direct);
    Tensor ref2 = conv2d(x, w2, Tensor{}, p, Conv2dAlgo::Direct);
    Tensor y1 = conv2d(x, w1, Tensor{}, p, Conv2dAlgo::Im2col);
    Tensor y2 = conv2d(x, w2, Tensor{}, p, Conv2dAlgo::Im2col);
    Tensor y1b = conv2d(x, w1, Tensor{}, p, Conv2dAlgo::Im2col);
    EXPECT_TRUE(bitEqual(ref1, y1));
    EXPECT_TRUE(bitEqual(ref2, y2)) << "stale packed weights reused";
    EXPECT_TRUE(bitEqual(ref1, y1b));
    EXPECT_GE(misses.value(), before + 3);
}

TEST(ConvDispatch, AutoFoldsBatchIntoGemmThreshold)
{
    // Bugfix: the Auto heuristic ignored batch size. Per-image work
    // here is ~36.9 kFLOPs (< 64 kFLOP threshold), so n=1 stays
    // Direct while n=2 crosses into Im2col.
    Conv2dParams p;
    p.padH = p.padW = 1;
    Conv2dPlan one = conv2dAutoPlan({1, 4, 8, 8}, {8, 4, 3, 3}, p);
    EXPECT_EQ(one.algo, Conv2dAlgo::Direct);
    Conv2dPlan two = conv2dAutoPlan({2, 4, 8, 8}, {8, 4, 3, 3}, p);
    EXPECT_EQ(two.algo, Conv2dAlgo::Im2col);

    // Whatever side of the threshold a shape lands on, the three
    // dispatch modes agree bitwise.
    Rng rng(73);
    for (int64_t n : {1, 2, 4}) {
        Tensor x = Tensor::randn({n, 4, 8, 8}, rng);
        Tensor w = Tensor::randn({8, 4, 3, 3}, rng);
        Tensor b = Tensor::randn({8}, rng);
        Tensor autod = conv2d(x, w, b, p, Conv2dAlgo::Auto);
        Tensor direct = conv2d(x, w, b, p, Conv2dAlgo::Direct);
        Tensor gemm = conv2d(x, w, b, p, Conv2dAlgo::Im2col);
        EXPECT_TRUE(bitEqual(autod, direct)) << "n=" << n;
        EXPECT_TRUE(bitEqual(autod, gemm)) << "n=" << n;
    }
}

// ---------------------------------------------------------------------
// Autotuner.
// ---------------------------------------------------------------------

/** Small key that is cheap to measure. */
Conv2dShapeKey
tinyKey(int64_t c = 8, int64_t k = 8)
{
    Conv2dShapeKey key;
    key.n = 1;
    key.c = c;
    key.h = key.w = 10;
    key.k = k;
    key.r = key.s = 3;
    key.padH = key.padW = 1;
    return key;
}

TEST(Autotune, HeuristicPlanIsFirstCandidate)
{
    const Conv2dShapeKey key = tinyKey();
    ConvAutotuneOptions opts;
    opts.enabled = true;
    const auto plans = enumerateConvPlans(key, opts);
    ASSERT_FALSE(plans.empty());
    const Conv2dPlan heuristic = conv2dAutoPlan(
        {key.n, key.c, key.h, key.w}, {key.k, key.c, key.r, key.s},
        Conv2dParams{1, 1, key.padH, key.padW, 1});
    EXPECT_EQ(plans[0].algo, heuristic.algo);
    EXPECT_EQ(plans[0].colBlock, heuristic.colBlock);
    EXPECT_EQ(plans[0].isa, heuristic.isa);
    EXPECT_FALSE(plans[0].fma);
    // Candidates are unique.
    for (size_t i = 0; i < plans.size(); ++i)
        for (size_t j = i + 1; j < plans.size(); ++j)
            EXPECT_FALSE(plans[i].algo == plans[j].algo &&
                         plans[i].colBlock == plans[j].colBlock &&
                         plans[i].isa == plans[j].isa &&
                         plans[i].fma == plans[j].fma);
    // Default enumeration is exact-flavor only.
    for (const Conv2dPlan &plan : plans)
        EXPECT_FALSE(plan.fma);
}

TEST(Autotune, CacheMeasuresEachShapeOnce)
{
    ConvPlanCache &cache = ConvPlanCache::instance();
    cache.clear();
    ConvAutotuneOptions opts;
    opts.enabled = true;
    opts.minMeasureFlops = 0; // measure even the tiny key
    opts.budgetMs = 1e9;
    const Conv2dShapeKey key = tinyKey();
    cache.plan(key, opts);
    const uint64_t after_first = cache.measurements();
    EXPECT_GT(after_first, 0u);
    EXPECT_EQ(cache.size(), 1u);
    // Second warmup of the same shape: pure cache hit, zero new
    // measurements (the CI smoke asserts the same property).
    for (int i = 0; i < 3; ++i)
        cache.plan(key, opts);
    EXPECT_EQ(cache.measurements(), after_first);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
}

TEST(Autotune, DisabledAndOutOfWindowShapesAreNotMeasured)
{
    ConvPlanCache &cache = ConvPlanCache::instance();
    cache.clear();
    ConvAutotuneOptions off;
    off.enabled = false;
    cache.plan(tinyKey(), off);
    EXPECT_EQ(cache.measurements(), 0u);

    ConvAutotuneOptions on;
    on.enabled = true; // default window: tiny key is below min
    cache.plan(tinyKey(16, 16), on);
    EXPECT_EQ(cache.measurements(), 0u);

    // Zero budget: the miss falls back to the heuristic unmeasured.
    ConvAutotuneOptions broke;
    broke.enabled = true;
    broke.minMeasureFlops = 0;
    broke.budgetMs = 0.0;
    cache.plan(tinyKey(4, 4), broke);
    EXPECT_EQ(cache.measurements(), 0u);
    EXPECT_EQ(cache.size(), 3u);
    cache.clear();
}

TEST(Autotune, TunedPlanNeverChangesExecutorOutput)
{
    // Autotuned plans are exact-flavor only, so a tuned executor must
    // be bit-identical to an untuned one regardless of which plan won.
    Graph g("tuned");
    int in = g.addInput("x", {1, 8, 16, 16});
    Layer conv;
    conv.name = "conv1";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 8;
    conv.attrs.outChannels = 16;
    conv.attrs.kernelH = conv.attrs.kernelW = 3;
    conv.attrs.padH = conv.attrs.padW = 1;
    conv.inputs = {in};
    g.addOutput(std::move(conv));

    Rng rng(79);
    Tensor x = Tensor::randn({1, 8, 16, 16}, rng);

    Executor plain(g, 11);
    plain.warmupWeights();
    Tensor ref = plain.runSimple(x);

    ConvPlanCache::instance().clear();
    Executor tuned(g, 11);
    ConvAutotuneOptions opts;
    opts.enabled = true;
    opts.minMeasureFlops = 0;
    opts.budgetMs = 1e9;
    tuned.setConvAutotune(opts);
    tuned.warmupWeights();
    EXPECT_GT(ConvPlanCache::instance().measurements(), 0u);
    Tensor out = tuned.runSimple(x);
    EXPECT_TRUE(bitEqual(ref, out));

    // A second warmup re-installs plans from the cache without
    // re-measuring.
    const uint64_t measured = ConvPlanCache::instance().measurements();
    Executor again(g, 11);
    again.setConvAutotune(opts);
    again.warmupWeights();
    EXPECT_EQ(ConvPlanCache::instance().measurements(), measured);
    ConvPlanCache::instance().clear();
}

TEST(Autotune, MeasuredMsEstimatesUnmeasuredShapes)
{
    ConvPlanCache &cache = ConvPlanCache::instance();
    cache.clear();
    ConvAutotuneOptions opts;
    opts.enabled = true; // tiny key is below the default window
    const double ms = cache.measuredMs(tinyKey(), opts);
    EXPECT_GT(ms, 0.0);
    EXPECT_GT(calibratedFlopsPerMs(), 0.0);
    cache.clear();
}

} // namespace
} // namespace vitdyn
