/** @file Tests of the closed-loop budget controller and the executor's
 * activation-liveness accounting. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "engine/controller.hh"
#include "graph/executor.hh"
#include "models/segformer.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

AccuracyResourceLut
threePointLut()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config.label = "small";
    pts[0].config.depths = {1, 1, 1, 1};
    pts[0].absoluteUtil = 10.0;
    pts[0].normalizedUtil = 0.5;
    pts[0].normalizedMiou = 0.7;
    pts[1].config.label = "mid";
    pts[1].config.depths = {2, 2, 2, 2};
    pts[1].absoluteUtil = 15.0;
    pts[1].normalizedUtil = 0.75;
    pts[1].normalizedMiou = 0.9;
    pts[2].config.label = "full";
    pts[2].config.depths = {3, 3, 3, 3};
    pts[2].absoluteUtil = 20.0;
    pts[2].normalizedUtil = 1.0;
    pts[2].normalizedMiou = 1.0;
    return AccuracyResourceLut(pts, "ms");
}

TEST(Controller, InitialBudgetAppliesMargin)
{
    BudgetController c(100.0, 0.1);
    EXPECT_DOUBLE_EQ(c.budgetForNextFrame(), 90.0);
    EXPECT_DOUBLE_EQ(c.biasEstimate(), 1.0);
}

TEST(Controller, BiasConvergesToObservedRatio)
{
    BudgetController c(100.0, 0.1, 0.25);
    for (int i = 0; i < 50; ++i)
        c.observe(10.0, 13.0); // platform 30% slower than modeled
    EXPECT_NEAR(c.biasEstimate(), 1.3, 0.01);
    EXPECT_NEAR(c.budgetForNextFrame(), 90.0 / 1.3, 0.5);
}

TEST(Controller, BiasRecoversWhenPlatformSpeedsUp)
{
    BudgetController c(100.0, 0.1, 0.5);
    for (int i = 0; i < 20; ++i)
        c.observe(10.0, 14.0);
    for (int i = 0; i < 20; ++i)
        c.observe(10.0, 9.0);
    EXPECT_NEAR(c.biasEstimate(), 0.9, 0.02);
}

TEST(Controller, InvalidParametersPanic)
{
    EXPECT_DEATH(BudgetController(-1.0), "deadline");
    EXPECT_DEATH(BudgetController(1.0, 1.5), "margin");
    EXPECT_DEATH(BudgetController(1.0, 0.1, 0.0), "smoothing");
}

TEST(Controller, RejectsInvalidObservations)
{
    // Regression: a single NaN/non-positive observation used to fold
    // into the EWMA and poison the bias estimate permanently.
    BudgetController c(100.0, 0.1, 0.25);
    c.observe(10.0, 12.0);
    const double bias_before = c.biasEstimate();

    c.observe(10.0, std::nan(""));
    c.observe(10.0, -3.0);
    c.observe(10.0, 0.0);
    c.observe(std::nan(""), 12.0);
    c.observe(-1.0, 12.0);
    c.observe(10.0, std::numeric_limits<double>::infinity());

    EXPECT_DOUBLE_EQ(c.biasEstimate(), bias_before);
    EXPECT_EQ(c.rejectedObservations(), 6);
    EXPECT_FALSE(std::isnan(c.budgetForNextFrame()));

    // Valid observations keep flowing afterwards.
    c.observe(10.0, 12.0);
    EXPECT_GT(c.biasEstimate(), bias_before);
}

TEST(Controller, PanicModeBacksOffAfterMissStreak)
{
    BudgetController c(20.0, 0.1, 0.25);
    EXPECT_FALSE(c.panicked());

    // Two misses: below the default threshold of three.
    c.observe(10.0, 30.0);
    c.observe(10.0, 30.0);
    EXPECT_FALSE(c.panicked());
    EXPECT_EQ(c.missStreak(), 2);

    // Third consecutive miss trips panic; budget shrinks beyond what
    // the bias estimate alone explains.
    const double before = c.budgetForNextFrame();
    c.observe(10.0, 30.0);
    EXPECT_TRUE(c.panicked());
    EXPECT_LT(c.panicScale(), 1.0);
    EXPECT_LT(c.budgetForNextFrame(), before);

    // Continued misses keep multiplying the backoff down.
    const double scale_one_miss = c.panicScale();
    c.observe(10.0, 30.0);
    EXPECT_LT(c.panicScale(), scale_one_miss);
    EXPECT_GE(c.panicScale(), c.panicConfig().minScale);
}

TEST(Controller, PanicModeRecoversGradually)
{
    BudgetController c(20.0, 0.1, 0.25);
    for (int i = 0; i < 4; ++i)
        c.observe(10.0, 30.0);
    ASSERT_TRUE(c.panicked());
    const double panicked_scale = c.panicScale();

    // One on-time frame does not snap back to full budget...
    c.observe(10.0, 8.0);
    EXPECT_GT(c.panicScale(), panicked_scale);
    EXPECT_TRUE(c.panicked());

    // ...but a sustained healthy run restores it completely.
    for (int i = 0; i < 100; ++i)
        c.observe(10.0, 8.0);
    EXPECT_FALSE(c.panicked());
    EXPECT_DOUBLE_EQ(c.panicScale(), 1.0);
}

TEST(Controller, PanicConfigValidation)
{
    BudgetController c(20.0);
    PanicConfig bad;
    bad.missStreakThreshold = 0;
    EXPECT_DEATH(c.setPanicConfig(bad), "streak");
    bad = PanicConfig{};
    bad.backoffFactor = 1.5;
    EXPECT_DEATH(c.setPanicConfig(bad), "backoff");
    bad = PanicConfig{};
    bad.recoveryRate = 0.5;
    EXPECT_DEATH(c.setPanicConfig(bad), "recovery");
}

TEST(ClosedLoop, UnbiasedPlatformNeverMisses)
{
    AccuracyResourceLut lut = threePointLut();
    // Deadline 23 with a 10% margin budgets 20.7: the full path (20)
    // fits with room for the 2% noise.
    BudgetController c(23.0, 0.1);
    ClosedLoopStats stats =
        simulateClosedLoop(lut, c, 1.0, 0.02, 200, 1);
    EXPECT_EQ(stats.deadlineMisses, 0);
    EXPECT_NEAR(stats.finalBias, 1.0, 0.05);
    EXPECT_GT(stats.meanAccuracy, 0.99); // full path keeps fitting
}

TEST(ClosedLoop, SlowPlatformConvergesAfterWarmup)
{
    // Platform runs 40% slower than modeled: the naive budget picks
    // the full path (cost 20 -> observed 28 > deadline 23) at first;
    // the controller learns the bias and steers down.
    AccuracyResourceLut lut = threePointLut();
    BudgetController c(23.0, 0.1, 0.4);
    ClosedLoopStats stats =
        simulateClosedLoop(lut, c, 1.4, 0.02, 200, 2);
    EXPECT_GT(stats.deadlineMisses, 0);        // the warmup pays
    EXPECT_EQ(stats.missesAfterWarmup, 0);     // then it converges
    EXPECT_NEAR(stats.finalBias, 1.4, 0.1);
    EXPECT_LT(stats.meanAccuracy, 1.0);        // accuracy was traded
}

TEST(ClosedLoop, BiasStepTriggersPanicThenConverges)
{
    // The platform abruptly runs 2x slower mid-stream (a co-runner
    // lands). A slow EWMA (smoothing 0.05) takes many frames to absorb
    // a jump that large; panic mode clamps to the cheapest path after
    // three straight misses and the loop is deadline-clean again well
    // before the end.
    AccuracyResourceLut lut = threePointLut();
    BudgetController c(23.0, 0.1, 0.05);

    ClosedLoopScenario scenario;
    scenario.platformBias = 1.0;
    scenario.noiseFraction = 0.02;
    scenario.frames = 400;
    scenario.seed = 3;
    scenario.biasStepAt = 100;
    scenario.biasStepFactor = 2.0;

    ClosedLoopStats stats = simulateClosedLoop(lut, c, scenario);
    EXPECT_GT(stats.deadlineMisses, 0);     // the step costs something
    EXPECT_GT(stats.panicFrames, 0);        // panic mode engaged
    EXPECT_EQ(stats.missesInLastQuarter, 0);// and the loop re-converged
    EXPECT_NEAR(stats.finalBias, 2.0, 0.3);
}

TEST(ClosedLoop, TransientCostFaultsDoNotDestabilize)
{
    // Sporadic 3x cost spikes (stalls, interference bursts) miss their
    // own deadline but must not spiral the controller: isolated misses
    // never reach the panic streak, and accuracy stays high.
    AccuracyResourceLut lut = threePointLut();
    BudgetController c(23.0, 0.1, 0.25);

    ClosedLoopScenario scenario;
    scenario.platformBias = 1.0;
    scenario.noiseFraction = 0.02;
    scenario.frames = 400;
    scenario.seed = 4;
    scenario.faultRate = 0.05;
    scenario.faultCostFactor = 3.0;

    ClosedLoopStats stats = simulateClosedLoop(lut, c, scenario);
    EXPECT_GT(stats.deadlineMisses, 0);
    EXPECT_LT(stats.deadlineMisses, 60); // ~5% of frames, not a spiral
    EXPECT_GT(stats.meanAccuracy, 0.9);
    // The bias estimate stays bounded: a spike decays instead of
    // compounding (it can be transiently high if a fault lands on the
    // final frames, but never approaches the 3x fault factor).
    EXPECT_GT(stats.finalBias, 0.8);
    EXPECT_LT(stats.finalBias, 2.0);
}

TEST(ClosedLoop, DeadlineChangeTakesEffect)
{
    BudgetController c(22.0, 0.1);
    c.setDeadline(44.0);
    EXPECT_DOUBLE_EQ(c.budgetForNextFrame(), 39.6);
}

TEST(ExecutorLiveness, PeakFarBelowTotal)
{
    SegformerConfig cfg = segformerB0Config();
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 8;
    Graph g = buildSegformer(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));

    const Executor::RunStats &stats = exec.lastRunStats();
    EXPECT_GT(stats.totalBytes, 0u);
    EXPECT_GT(stats.peakLiveBytes, 0u);
    // Liveness-based freeing keeps peak activation memory well below
    // the sum of all layer outputs on a deep graph.
    EXPECT_LT(stats.peakLiveBytes, stats.totalBytes / 3);
    EXPECT_LT(stats.peakLiveTensors, g.numLayers() / 3);
}

TEST(ExecutorLiveness, OutputsSurviveUntilTheEnd)
{
    // The graph output must not be freed even if consumed mid-graph.
    Graph g("keep_output");
    int in = g.addInput("x", {1, 4, 4, 4});
    Layer conv;
    conv.name = "mid";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 4;
    conv.inputs = {in};
    int mid = g.addLayer(std::move(conv));
    g.markOutput(mid); // output AND consumed below
    Layer act;
    act.name = "tail";
    act.kind = LayerKind::ReLU;
    act.inputs = {mid};
    g.markOutput(g.addLayer(std::move(act)));

    Executor exec(g, 1);
    Rng rng(2);
    std::map<std::string, Tensor> inputs;
    inputs["x"] = Tensor::randn({1, 4, 4, 4}, rng);
    auto outs = exec.run(inputs);
    EXPECT_EQ(outs.at("mid").numel(), 64);
    EXPECT_EQ(outs.at("tail").numel(), 64);
}

} // namespace
} // namespace vitdyn
