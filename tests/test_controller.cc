/** @file Tests of the closed-loop budget controller and the executor's
 * activation-liveness accounting. */

#include <gtest/gtest.h>

#include "engine/controller.hh"
#include "graph/executor.hh"
#include "models/segformer.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

AccuracyResourceLut
threePointLut()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config.label = "small";
    pts[0].config.depths = {1, 1, 1, 1};
    pts[0].absoluteUtil = 10.0;
    pts[0].normalizedUtil = 0.5;
    pts[0].normalizedMiou = 0.7;
    pts[1].config.label = "mid";
    pts[1].config.depths = {2, 2, 2, 2};
    pts[1].absoluteUtil = 15.0;
    pts[1].normalizedUtil = 0.75;
    pts[1].normalizedMiou = 0.9;
    pts[2].config.label = "full";
    pts[2].config.depths = {3, 3, 3, 3};
    pts[2].absoluteUtil = 20.0;
    pts[2].normalizedUtil = 1.0;
    pts[2].normalizedMiou = 1.0;
    return AccuracyResourceLut(pts, "ms");
}

TEST(Controller, InitialBudgetAppliesMargin)
{
    BudgetController c(100.0, 0.1);
    EXPECT_DOUBLE_EQ(c.budgetForNextFrame(), 90.0);
    EXPECT_DOUBLE_EQ(c.biasEstimate(), 1.0);
}

TEST(Controller, BiasConvergesToObservedRatio)
{
    BudgetController c(100.0, 0.1, 0.25);
    for (int i = 0; i < 50; ++i)
        c.observe(10.0, 13.0); // platform 30% slower than modeled
    EXPECT_NEAR(c.biasEstimate(), 1.3, 0.01);
    EXPECT_NEAR(c.budgetForNextFrame(), 90.0 / 1.3, 0.5);
}

TEST(Controller, BiasRecoversWhenPlatformSpeedsUp)
{
    BudgetController c(100.0, 0.1, 0.5);
    for (int i = 0; i < 20; ++i)
        c.observe(10.0, 14.0);
    for (int i = 0; i < 20; ++i)
        c.observe(10.0, 9.0);
    EXPECT_NEAR(c.biasEstimate(), 0.9, 0.02);
}

TEST(Controller, InvalidParametersPanic)
{
    EXPECT_DEATH(BudgetController(-1.0), "deadline");
    EXPECT_DEATH(BudgetController(1.0, 1.5), "margin");
    EXPECT_DEATH(BudgetController(1.0, 0.1, 0.0), "smoothing");
}

TEST(ClosedLoop, UnbiasedPlatformNeverMisses)
{
    AccuracyResourceLut lut = threePointLut();
    // Deadline 23 with a 10% margin budgets 20.7: the full path (20)
    // fits with room for the 2% noise.
    BudgetController c(23.0, 0.1);
    ClosedLoopStats stats =
        simulateClosedLoop(lut, c, 1.0, 0.02, 200, 1);
    EXPECT_EQ(stats.deadlineMisses, 0);
    EXPECT_NEAR(stats.finalBias, 1.0, 0.05);
    EXPECT_GT(stats.meanAccuracy, 0.99); // full path keeps fitting
}

TEST(ClosedLoop, SlowPlatformConvergesAfterWarmup)
{
    // Platform runs 40% slower than modeled: the naive budget picks
    // the full path (cost 20 -> observed 28 > deadline 23) at first;
    // the controller learns the bias and steers down.
    AccuracyResourceLut lut = threePointLut();
    BudgetController c(23.0, 0.1, 0.4);
    ClosedLoopStats stats =
        simulateClosedLoop(lut, c, 1.4, 0.02, 200, 2);
    EXPECT_GT(stats.deadlineMisses, 0);        // the warmup pays
    EXPECT_EQ(stats.missesAfterWarmup, 0);     // then it converges
    EXPECT_NEAR(stats.finalBias, 1.4, 0.1);
    EXPECT_LT(stats.meanAccuracy, 1.0);        // accuracy was traded
}

TEST(ClosedLoop, DeadlineChangeTakesEffect)
{
    BudgetController c(22.0, 0.1);
    c.setDeadline(44.0);
    EXPECT_DOUBLE_EQ(c.budgetForNextFrame(), 39.6);
}

TEST(ExecutorLiveness, PeakFarBelowTotal)
{
    SegformerConfig cfg = segformerB0Config();
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 8;
    Graph g = buildSegformer(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));

    const Executor::RunStats &stats = exec.lastRunStats();
    EXPECT_GT(stats.totalBytes, 0u);
    EXPECT_GT(stats.peakLiveBytes, 0u);
    // Liveness-based freeing keeps peak activation memory well below
    // the sum of all layer outputs on a deep graph.
    EXPECT_LT(stats.peakLiveBytes, stats.totalBytes / 3);
    EXPECT_LT(stats.peakLiveTensors, g.numLayers() / 3);
}

TEST(ExecutorLiveness, OutputsSurviveUntilTheEnd)
{
    // The graph output must not be freed even if consumed mid-graph.
    Graph g("keep_output");
    int in = g.addInput("x", {1, 4, 4, 4});
    Layer conv;
    conv.name = "mid";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 4;
    conv.inputs = {in};
    int mid = g.addLayer(std::move(conv));
    g.markOutput(mid); // output AND consumed below
    Layer act;
    act.name = "tail";
    act.kind = LayerKind::ReLU;
    act.inputs = {mid};
    g.markOutput(g.addLayer(std::move(act)));

    Executor exec(g, 1);
    Rng rng(2);
    std::map<std::string, Tensor> inputs;
    inputs["x"] = Tensor::randn({1, 4, 4, 4}, rng);
    auto outs = exec.run(inputs);
    EXPECT_EQ(outs.at("mid").numel(), 64);
    EXPECT_EQ(outs.at("tail").numel(), 64);
}

} // namespace
} // namespace vitdyn
