/** @file Tests of the OS-LWS tiling solver: coverage invariants,
 * utilization bounds, and the paper's key mapping behaviours. */

#include <gtest/gtest.h>

#include "accel/tiling.hh"

namespace vitdyn
{
namespace
{

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Tiling factors must cover every loop dimension. */
void
expectCoverage(const AcceleratorConfig &cfg, const ConvWorkload &w,
               const TilingSolution &s)
{
    const int64_t cg = w.c / w.groups;
    EXPECT_GE(s.k2 * s.k1 * s.k2s * cfg.k0, w.k);
    EXPECT_GE(s.c1 * s.c2s * cfg.c0, cg);
    EXPECT_GE(s.p2 * s.p1 * s.p2s, w.n * w.p);
    EXPECT_GE(s.q2 * s.q1 * s.q0 * s.q2s, w.q);
}

TEST(Tiling, FuseConvFullUtilizationOnA)
{
    // Conv2DFuse on accelerator_A runs at ~full utilization: the paper
    // sizes accelerator_A's weight memory so fuse needs no temporal
    // weight tiling.
    ConvWorkload fuse{1, 768, 3072, 128, 128, 1, 1, 1, 1, 1};
    TilingSolution s = solveTiling(acceleratorA(), fuse);
    expectCoverage(acceleratorA(), fuse, s);
    EXPECT_TRUE(s.weightsResident);
    EXPECT_GT(s.utilization, 0.95);
    EXPECT_NEAR(static_cast<double>(s.totalCycles),
                static_cast<double>(fuse.macs()) / 16384, 0.05 * 2.4e6);
}

TEST(Tiling, FuseConvSpillsOnStar)
{
    // accelerator*'s 128 kB weight memory cannot hold fuse's 768
    // output channels across 16 PEs -> temporal weight tiling (k2>1),
    // the effect behind the <3% full-model slowdown.
    ConvWorkload fuse{1, 768, 3072, 128, 128, 1, 1, 1, 1, 1};
    TilingSolution s = solveTiling(acceleratorStar(), fuse);
    EXPECT_FALSE(s.weightsResident);
    EXPECT_GT(s.k2, 1);
    // Still close to full-rate compute.
    TilingSolution a = solveTiling(acceleratorA(), fuse);
    EXPECT_LT(static_cast<double>(s.totalCycles) / a.totalCycles, 1.35);
}

TEST(Tiling, DepthwiseConvLimitedByC0)
{
    // DWConv has one input channel per group: C0 utilization is 1/C0,
    // the paper's Fig 11 energy-per-FLOP outlier mechanism.
    ConvWorkload dw{1, 256, 256, 128, 128, 3, 3, 1, 1, 256};
    TilingSolution s = solveTiling(acceleratorStar(), dw);
    EXPECT_EQ(s.c0Used, 1);
    EXPECT_LE(s.utilization, 1.0 / 32 + 1e-6);
    EXPECT_GT(s.utilization, 1.0 / 32 * 0.5);
}

TEST(Tiling, ThreeChannelInputUnderutilized)
{
    // The model input layer (3 channels) underutilizes C0 = 32.
    ConvWorkload pe{1, 64, 3, 128, 128, 7, 7, 4, 4, 1};
    TilingSolution s = solveTiling(acceleratorStar(), pe);
    EXPECT_EQ(s.c0Used, 3);
    EXPECT_LE(s.utilization, 3.0 / 32 + 1e-6);
}

TEST(Tiling, MatmulMapping)
{
    // Section V: A(m,n) x B(n,o) maps as a 1 x m image. A big square
    // GEMM should approach full utilization.
    ConvWorkload mm{1, 1024, 1024, 1, 4096, 1, 1, 1, 1, 1};
    TilingSolution s = solveTiling(acceleratorStar(), mm);
    expectCoverage(acceleratorStar(), mm, s);
    EXPECT_GT(s.utilization, 0.9);
}

TEST(Tiling, CyclesNeverBelowIdeal)
{
    const AcceleratorConfig cfg = acceleratorStar();
    const ConvWorkload workloads[] = {
        {1, 768, 3072, 128, 128, 1, 1, 1, 1, 1},
        {1, 64, 64, 56, 56, 3, 3, 1, 1, 1},
        {1, 150, 768, 128, 128, 1, 1, 1, 1, 1},
        {2, 512, 256, 1, 300, 1, 1, 1, 1, 1},
        {1, 256, 256, 128, 128, 3, 3, 1, 1, 256},
    };
    for (const ConvWorkload &w : workloads) {
        TilingSolution s = solveTiling(cfg, w);
        const double ideal =
            static_cast<double>(w.macs()) / cfg.parallelMacs();
        EXPECT_GE(static_cast<double>(s.computeCycles), ideal * 0.999);
        EXPECT_LE(s.utilization, 1.0 + 1e-9);
        EXPECT_GT(s.utilization, 0.0);
    }
}

TEST(Tiling, CrossPeReductionHelpsWideInputs)
{
    // Disabling cross-PE reduction forces all 3072 input channels into
    // one PE's temporal loop; for fuse the C-split is what lets K stay
    // resident. Cycles must not improve when the feature is off.
    ConvWorkload fuse{1, 768, 3072, 128, 128, 1, 1, 1, 1, 1};
    AcceleratorConfig on = acceleratorA();
    AcceleratorConfig off = acceleratorA();
    off.crossPeReduction = false;
    TilingSolution son = solveTiling(on, fuse);
    TilingSolution soff = solveTiling(off, fuse);
    EXPECT_EQ(soff.c2s, 1);
    EXPECT_GE(soff.totalCycles, son.totalCycles);
}

TEST(Tiling, WeightCapacityRespected)
{
    ConvWorkload w{1, 512, 512, 64, 64, 3, 3, 1, 1, 1};
    for (const auto &cfg : {acceleratorA(), acceleratorStar(),
                            acceleratorOfa3()}) {
        TilingSolution s = solveTiling(cfg, w);
        const int64_t weight_tile =
            cfg.k0 * s.k1 * cfg.c0 * s.c1 * w.r * w.s;
        // Either the tile fits on chip, or the solver marked the
        // weights as streamed (and charged the refetch traffic).
        if (weight_tile > cfg.weightMemKb * 1024) {
            EXPECT_FALSE(s.weightsResident) << cfg.name;
            EXPECT_GE(s.dramWeightBytes, w.k * w.c * w.r * w.s)
                << cfg.name;
        } else if (s.k2 == 1) {
            EXPECT_TRUE(s.weightsResident) << cfg.name;
        }
    }
}

TEST(Tiling, ActivationCapacityRespected)
{
    ConvWorkload w{1, 256, 512, 96, 96, 3, 3, 1, 1, 1};
    for (const auto &cfg : {acceleratorA(), acceleratorStar(),
                            acceleratorOfa3()}) {
        TilingSolution s = solveTiling(cfg, w);
        const int64_t in_h = (s.p1 - 1) * w.strideH + w.r;
        const int64_t in_w = (s.q1 * s.q0 - 1) * w.strideW + w.s;
        const int64_t tile = cfg.c0 * s.c1 * in_h * in_w;
        // A single minimal tile may exceed AM only when even p1=q1=1
        // cannot fit; none of these shapes are that degenerate.
        EXPECT_LE(tile, cfg.activationMemKb * 1024) << cfg.name;
    }
}

TEST(Tiling, ZeroWorkloadPanics)
{
    ConvWorkload w;
    EXPECT_DEATH(solveTiling(acceleratorStar(), w), "zero-size");
}

/** Property sweep: random-ish workloads obey all invariants. */
class TilingProperty : public testing::TestWithParam<int> {};

TEST_P(TilingProperty, InvariantsHold)
{
    const int seed = GetParam();
    // Deterministic pseudo-random workload from the parameter.
    auto pick = [&](int i, int64_t lo, int64_t hi) {
        const int64_t span = hi - lo + 1;
        return lo + (seed * 2654435761u + i * 40503u) % span;
    };
    ConvWorkload w;
    w.n = pick(0, 1, 2);
    w.k = pick(1, 1, 512);
    w.c = pick(2, 1, 512);
    w.p = pick(3, 1, 64);
    w.q = pick(4, 1, 64);
    w.r = pick(5, 1, 3);
    w.s = w.r;
    w.strideH = w.strideW = pick(6, 1, 2);

    for (const auto &cfg : {acceleratorStar(),
                            makeVectorizationVariant(16, 16, 128, 64),
                            makeVectorizationVariant(64, 16, 256, 32)}) {
        TilingSolution s = solveTiling(cfg, w);
        expectCoverage(cfg, w, s);
        EXPECT_GE(s.totalCycles, ceilDiv(w.macs(),
                                         cfg.parallelMacs()));
        EXPECT_LE(s.utilization, 1.0 + 1e-9);
        EXPECT_GE(s.stallCycles, 0);
        EXPECT_EQ(s.totalCycles, s.computeCycles + s.stallCycles);
        EXPECT_GE(s.dramWeightBytes, 0);
        EXPECT_EQ(s.weightsResident, s.k2 == 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, TilingProperty, testing::Range(1, 33));

TEST(Arch, VariantKeepsParallelMacsConstant)
{
    for (int64_t k0 : {16, 32, 64})
        for (int64_t c0 : {16, 32, 64}) {
            auto cfg = makeVectorizationVariant(k0, c0, 128, 64);
            EXPECT_EQ(cfg.parallelMacs(), 16384);
        }
}

TEST(Arch, PresetsMatchPaper)
{
    EXPECT_EQ(acceleratorA().weightMemKb, 1024);
    EXPECT_EQ(acceleratorA().parallelMacs(), 16384);
    EXPECT_EQ(acceleratorStar().weightMemKb, 128);
    EXPECT_EQ(acceleratorOfa2().weightMemKb,
              acceleratorStar().weightMemKb);
    EXPECT_EQ(acceleratorOfa3().weightMemKb, 64);
    EXPECT_EQ(acceleratorOfa3().activationMemKb, 32);
}

} // namespace
} // namespace vitdyn
