/** @file Unit tests for the util substrate: RNG, tables, arg
 * parsing, CSV, and the JSON reader. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/args.hh"
#include "util/csv.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace vitdyn
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 5.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = rng.uniformInt(0, 7);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 7);
        saw_lo |= v == 0;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(13);
    const int n = 100000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaling)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Table, RejectsMismatchedRowWidth)
{
    Table t("x", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row width");
}

TEST(Table, RendersAllCells)
{
    Table t("demo", {"col1", "col2"});
    t.addRow({"hello", "world"});
    t.addRow({"42", "43"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("hello"), std::string::npos);
    EXPECT_NE(s.find("43"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvEscapesCommas)
{
    Table t("csv", {"a"});
    t.addRow({"x,y"});
    EXPECT_NE(t.toCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, CsvHeaderFirst)
{
    Table t("csv", {"alpha", "beta"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv().rfind("alpha,beta\n", 0), 0u);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, IntWithCommas)
{
    EXPECT_EQ(Table::intWithCommas(4415208), "4,415,208");
    EXPECT_EQ(Table::intWithCommas(12), "12");
    EXPECT_EQ(Table::intWithCommas(-1234), "-1,234");
    EXPECT_EQ(Table::intWithCommas(0), "0");
}

TEST(ArgParser, DefaultsAndOverrides)
{
    ArgParser p;
    p.addOption("count", "5", "a count");
    p.addFlag("verbose", "talk more");

    const char *argv[] = {"prog", "--count", "9", "--verbose"};
    p.parse(4, const_cast<char **>(argv));
    EXPECT_EQ(p.getInt("count"), 9);
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(ArgParser, EqualsSyntax)
{
    ArgParser p;
    p.addOption("rate", "1.0", "a rate");
    const char *argv[] = {"prog", "--rate=2.5"};
    p.parse(2, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(p.getDouble("rate"), 2.5);
}

TEST(ArgParser, UnknownOptionIsFatal)
{
    ArgParser p;
    const char *argv[] = {"prog", "--nope", "1"};
    EXPECT_EXIT(p.parse(3, const_cast<char **>(argv)),
                testing::ExitedWithCode(1), "unknown option");
}

TEST(ArgParser, UnparsedKeepsDefault)
{
    ArgParser p;
    p.addOption("size", "128", "a size");
    const char *argv[] = {"prog"};
    p.parse(1, const_cast<char **>(argv));
    EXPECT_EQ(p.getInt("size"), 128);
}

TEST(Csv, EscapeQuotesOnlyWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, ParseInvertsEmission)
{
    const std::vector<std::vector<std::string>> rows = {
        {"frame", "label", "note"},
        {"0", "full,fused", "said \"ok\""},
        {"1", "multi\nline", ""},
    };
    std::string doc;
    for (const auto &row : rows)
        doc += csvJoin(row) + "\n";
    EXPECT_EQ(csvParse(doc), rows);
}

TEST(Csv, ParseHandlesCrLfAndNoTrailingNewline)
{
    const auto rows = csvParse("a,b\r\n1,2");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Json, ParsesScalarsAndContainers)
{
    Result<JsonValue> r = parseJson(
        "  {\"n\": -12.5e1, \"s\": \"hi\", \"t\": true, \"f\": false,"
        " \"z\": null, \"a\": [1, 2, 3], \"o\": {\"k\": \"v\"}}  ");
    ASSERT_TRUE(r.isOk()) << r.status().message();
    const JsonValue &v = r.value();
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.numberOr("n", 0.0), -125.0);
    EXPECT_EQ(v.stringOr("s", ""), "hi");
    EXPECT_TRUE(v.find("t")->boolean());
    EXPECT_FALSE(v.find("f")->boolean());
    EXPECT_TRUE(v.find("z")->isNull());
    ASSERT_EQ(v.find("a")->array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->array()[1].number(), 2.0);
    EXPECT_EQ(v.find("o")->stringOr("k", ""), "v");
    // Fallback accessors are nullptr-safe on absent keys.
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, DecodesEscapesAndSurrogatePairs)
{
    Result<JsonValue> r = parseJson(
        "\"q\\\" b\\\\ s\\/ n\\n r\\r t\\t u\\u0041 e\\u00e9 "
        "p\\ud83d\\ude00\"");
    ASSERT_TRUE(r.isOk()) << r.status().message();
    EXPECT_EQ(r.value().string(),
              "q\" b\\ s/ n\n r\r t\t uA e\xc3\xa9 p\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",                      // empty
        "{\"a\": 1",             // unterminated object
        "[1, 2,]",               // trailing comma
        "{\"a\" 1}",             // missing colon
        "\"unterminated",        // unterminated string
        "\"raw \x01 control\"",  // unescaped control char
        "01",                    // leading zero
        "1.",                    // bare trailing dot
        "+1",                    // leading plus
        "nul",                   // truncated keyword
        "\"lone \\ud83d pair\"", // unpaired surrogate
        "{} trailing",           // garbage after the document
        "1e400",                 // overflows to infinity
    };
    for (const char *doc : bad) {
        Result<JsonValue> r = parseJson(doc);
        EXPECT_FALSE(r.isOk()) << "accepted: " << doc;
    }
    // Errors carry a byte offset for locating the problem.
    Result<JsonValue> r = parseJson("{\"a\": !}");
    ASSERT_FALSE(r.isOk());
    EXPECT_NE(r.status().message().find("at byte"),
              std::string::npos);
}

TEST(Json, DuplicateKeysLastWins)
{
    Result<JsonValue> r = parseJson("{\"k\": 1, \"k\": 2}");
    ASSERT_TRUE(r.isOk());
    EXPECT_DOUBLE_EQ(r.value().numberOr("k", 0.0), 2.0);
}

TEST(Logging, ParseLogLevelNamesAndCase)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("silent", &ok), LogLevel::Silent);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("WARN", &ok), LogLevel::Warn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("Inform", &ok), LogLevel::Inform);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("debug", &ok), LogLevel::Debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("loud", &ok), LogLevel::Inform);
    EXPECT_FALSE(ok);
}

} // namespace
} // namespace vitdyn
