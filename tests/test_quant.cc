/** @file Tests of INT8 quantization and quantized kernels. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/quant.hh"
#include "util/random.hh"
#include "util/threadpool.hh"

namespace vitdyn
{
namespace
{

TEST(Quantize, RoundTripErrorBounded)
{
    Rng rng(1);
    Tensor x = Tensor::randn({1000}, rng);
    QuantTensor q = quantize(x);
    Tensor back = dequantize(q);
    // Max error is half a quantization step.
    const float step = q.scale;
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_LE(std::fabs(back[i] - x[i]), step / 2 + 1e-6f);
}

TEST(Quantize, ScaleMapsMaxTo127)
{
    Tensor x({3}, std::vector<float>{0.5f, -2.0f, 1.0f});
    QuantTensor q = quantize(x);
    EXPECT_FLOAT_EQ(q.scale, 2.0f / 127.0f);
    EXPECT_EQ(q.data[1], -127);
}

TEST(Quantize, AllZerosSafe)
{
    Tensor x({4}, 0.0f);
    QuantTensor q = quantize(x);
    EXPECT_FLOAT_EQ(q.scale, 1.0f);
    Tensor back = dequantize(q);
    EXPECT_TRUE(back.allClose(x));
}

TEST(Quantize, Symmetric)
{
    Tensor x({2}, std::vector<float>{3.0f, -3.0f});
    QuantTensor q = quantize(x);
    EXPECT_EQ(q.data[0], 127);
    EXPECT_EQ(q.data[1], -127);
}

class QuantConvTest : public testing::TestWithParam<int> {};

TEST_P(QuantConvTest, Int8ConvTracksFloat)
{
    Rng rng(100 + GetParam());
    Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
    Tensor w = Tensor::randn({8, 4, 3, 3}, rng, 0.0f, 0.2f);
    Tensor b = Tensor::randn({8}, rng, 0.0f, 0.05f);
    Conv2dParams p;
    p.padH = p.padW = 1;

    Tensor ref = conv2d(x, w, b, p);
    Tensor qy = conv2dInt8(quantize(x), quantize(w), b, p);

    EXPECT_EQ(ref.shape(), qy.shape());
    const double err = meanAbsError(ref, qy);
    // INT8 error stays well below the activation scale.
    EXPECT_LT(err, 0.05 * ref.maxAbs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantConvTest, testing::Range(0, 6));

TEST(QuantConv, DepthwiseGroups)
{
    Rng rng(7);
    Tensor x = Tensor::randn({1, 6, 5, 5}, rng);
    Tensor w = Tensor::randn({6, 1, 3, 3}, rng, 0.0f, 0.3f);
    Conv2dParams p;
    p.groups = 6;
    p.padH = p.padW = 1;
    Tensor ref = conv2d(x, w, Tensor{}, p);
    Tensor qy = conv2dInt8(quantize(x), quantize(w), Tensor{}, p);
    EXPECT_LT(meanAbsError(ref, qy), 0.05 * ref.maxAbs());
}

class QuantLinearTest : public testing::TestWithParam<int64_t> {};

TEST_P(QuantLinearTest, Int8LinearTracksFloat)
{
    const int64_t in_f = GetParam();
    Rng rng(50);
    Tensor x = Tensor::randn({4, in_f}, rng);
    Tensor w = Tensor::randn({16, in_f}, rng, 0.0f,
                             1.0f / std::sqrt(static_cast<float>(in_f)));
    Tensor ref = linear(x, w, Tensor{});
    Tensor qy = linearInt8(quantize(x), quantize(w), Tensor{});
    EXPECT_LT(meanAbsError(ref, qy), 0.05 * ref.maxAbs() + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantLinearTest,
                         testing::Values<int64_t>(8, 32, 64, 256));

TEST(QuantLinear, BiasAppliedInFloat)
{
    Tensor x({1, 2}, std::vector<float>{0.0f, 0.0f});
    Tensor w({1, 2}, std::vector<float>{1.0f, 1.0f});
    Tensor b({1}, std::vector<float>{0.123f});
    Tensor y = linearInt8(quantize(x), quantize(w), b);
    EXPECT_FLOAT_EQ(y[0], 0.123f);
}

TEST(QuantConv, MatchesDequantizedFloatReference)
{
    // conv2dInt8 computes exactly conv2d(dequantize(qx),
    // dequantize(qw)) + bias, because int32/int64 accumulation is
    // exact and the output rescale applies the combined scale once.
    Rng rng(23);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    Tensor w = Tensor::randn({5, 3, 3, 3}, rng, 0.0f, 0.2f);
    Tensor b = Tensor::randn({5}, rng, 0.0f, 0.05f);
    Conv2dParams p;
    p.strideH = p.strideW = 2;
    p.padH = p.padW = 1;
    QuantTensor qx = quantize(x);
    QuantTensor qw = quantize(w);
    Tensor qy = conv2dInt8(qx, qw, b, p);
    Tensor ref = conv2d(dequantize(qx), dequantize(qw), b, p);
    ASSERT_EQ(qy.shape(), ref.shape());
    // Not bit-identical (the fp32 path accumulates in float, the int8
    // path in int64 with one final rescale), but far tighter than the
    // quantization error itself.
    EXPECT_LT(meanAbsError(ref, qy), 1e-4);
}

TEST(QuantConv, ThreadedBitIdenticalToSequential)
{
    Rng rng(29);
    Tensor x = Tensor::randn({2, 6, 10, 10}, rng);
    Tensor w = Tensor::randn({8, 3, 3, 3}, rng, 0.0f, 0.2f);
    Conv2dParams p;
    p.groups = 2;
    p.padH = p.padW = 1;
    QuantTensor qx = quantize(x);
    QuantTensor qw = quantize(w);
    Tensor seq, par;
    {
        ThreadPool::instance().resize(1);
        seq = conv2dInt8(qx, qw, Tensor{}, p);
    }
    {
        ThreadPool::instance().resize(8);
        par = conv2dInt8(qx, qw, Tensor{}, p);
        ThreadPool::instance().resize(0);
    }
    ASSERT_EQ(seq.shape(), par.shape());
    EXPECT_EQ(std::memcmp(seq.data(), par.data(),
                          sizeof(float) * seq.numel()),
              0);
}

TEST(QuantConv, ValidationPanics)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rng rng(31);
    Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
    Tensor w = Tensor::randn({8, 4, 3, 3}, rng);
    QuantTensor qx = quantize(x);
    QuantTensor qw = quantize(w);

    // Group count that does not divide the channel counts.
    Conv2dParams bad_groups;
    bad_groups.groups = 3;
    EXPECT_DEATH(conv2dInt8(qx, qw, Tensor{}, bad_groups), "groups");

    // Weight C/g inconsistent with the input channels.
    Conv2dParams two_groups;
    two_groups.groups = 2;
    EXPECT_DEATH(conv2dInt8(qx, qw, Tensor{}, two_groups), "C/g");

    // Bias length must match K.
    Tensor bad_bias({3}, 0.0f);
    Conv2dParams pad1;
    pad1.padH = pad1.padW = 1;
    EXPECT_DEATH(conv2dInt8(qx, qw, bad_bias, pad1), "bias");

    // Kernel larger than the unpadded input collapses the output.
    Tensor tiny = Tensor::randn({1, 4, 2, 2}, rng);
    EXPECT_DEATH(conv2dInt8(quantize(tiny), qw, Tensor{},
                            Conv2dParams{}),
                 "collapsed");
}

TEST(MeanAbsError, Basics)
{
    Tensor a({2}, std::vector<float>{1.0f, 2.0f});
    Tensor b({2}, std::vector<float>{2.0f, 0.0f});
    EXPECT_DOUBLE_EQ(meanAbsError(a, b), 1.5);
    EXPECT_DOUBLE_EQ(meanAbsError(a, a), 0.0);
}

} // namespace
} // namespace vitdyn
