/** @file Tests of INT8 quantization and quantized kernels. */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/quant.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Quantize, RoundTripErrorBounded)
{
    Rng rng(1);
    Tensor x = Tensor::randn({1000}, rng);
    QuantTensor q = quantize(x);
    Tensor back = dequantize(q);
    // Max error is half a quantization step.
    const float step = q.scale;
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_LE(std::fabs(back[i] - x[i]), step / 2 + 1e-6f);
}

TEST(Quantize, ScaleMapsMaxTo127)
{
    Tensor x({3}, std::vector<float>{0.5f, -2.0f, 1.0f});
    QuantTensor q = quantize(x);
    EXPECT_FLOAT_EQ(q.scale, 2.0f / 127.0f);
    EXPECT_EQ(q.data[1], -127);
}

TEST(Quantize, AllZerosSafe)
{
    Tensor x({4}, 0.0f);
    QuantTensor q = quantize(x);
    EXPECT_FLOAT_EQ(q.scale, 1.0f);
    Tensor back = dequantize(q);
    EXPECT_TRUE(back.allClose(x));
}

TEST(Quantize, Symmetric)
{
    Tensor x({2}, std::vector<float>{3.0f, -3.0f});
    QuantTensor q = quantize(x);
    EXPECT_EQ(q.data[0], 127);
    EXPECT_EQ(q.data[1], -127);
}

class QuantConvTest : public testing::TestWithParam<int> {};

TEST_P(QuantConvTest, Int8ConvTracksFloat)
{
    Rng rng(100 + GetParam());
    Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
    Tensor w = Tensor::randn({8, 4, 3, 3}, rng, 0.0f, 0.2f);
    Tensor b = Tensor::randn({8}, rng, 0.0f, 0.05f);
    Conv2dParams p;
    p.padH = p.padW = 1;

    Tensor ref = conv2d(x, w, b, p);
    Tensor qy = conv2dInt8(quantize(x), quantize(w), b, p);

    EXPECT_EQ(ref.shape(), qy.shape());
    const double err = meanAbsError(ref, qy);
    // INT8 error stays well below the activation scale.
    EXPECT_LT(err, 0.05 * ref.maxAbs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantConvTest, testing::Range(0, 6));

TEST(QuantConv, DepthwiseGroups)
{
    Rng rng(7);
    Tensor x = Tensor::randn({1, 6, 5, 5}, rng);
    Tensor w = Tensor::randn({6, 1, 3, 3}, rng, 0.0f, 0.3f);
    Conv2dParams p;
    p.groups = 6;
    p.padH = p.padW = 1;
    Tensor ref = conv2d(x, w, Tensor{}, p);
    Tensor qy = conv2dInt8(quantize(x), quantize(w), Tensor{}, p);
    EXPECT_LT(meanAbsError(ref, qy), 0.05 * ref.maxAbs());
}

class QuantLinearTest : public testing::TestWithParam<int64_t> {};

TEST_P(QuantLinearTest, Int8LinearTracksFloat)
{
    const int64_t in_f = GetParam();
    Rng rng(50);
    Tensor x = Tensor::randn({4, in_f}, rng);
    Tensor w = Tensor::randn({16, in_f}, rng, 0.0f,
                             1.0f / std::sqrt(static_cast<float>(in_f)));
    Tensor ref = linear(x, w, Tensor{});
    Tensor qy = linearInt8(quantize(x), quantize(w), Tensor{});
    EXPECT_LT(meanAbsError(ref, qy), 0.05 * ref.maxAbs() + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantLinearTest,
                         testing::Values<int64_t>(8, 32, 64, 256));

TEST(QuantLinear, BiasAppliedInFloat)
{
    Tensor x({1, 2}, std::vector<float>{0.0f, 0.0f});
    Tensor w({1, 2}, std::vector<float>{1.0f, 1.0f});
    Tensor b({1}, std::vector<float>{0.123f});
    Tensor y = linearInt8(quantize(x), quantize(w), b);
    EXPECT_FLOAT_EQ(y[0], 0.123f);
}

TEST(MeanAbsError, Basics)
{
    Tensor a({2}, std::vector<float>{1.0f, 2.0f});
    Tensor b({2}, std::vector<float>{2.0f, 0.0f});
    EXPECT_DOUBLE_EQ(meanAbsError(a, b), 1.5);
    EXPECT_DOUBLE_EQ(meanAbsError(a, a), 0.0);
}

} // namespace
} // namespace vitdyn
