/** @file Unit tests for the Tensor value type. */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Shape, Numel)
{
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24);
    EXPECT_EQ(shapeNumel({}), 1);
    EXPECT_EQ(shapeNumel({5}), 5);
    EXPECT_EQ(shapeNumel({7, 0, 3}), 0);
}

TEST(Shape, ToString)
{
    EXPECT_EQ(shapeToString({1, 3, 8, 8}), "[1, 3, 8, 8]");
    EXPECT_EQ(shapeToString({}), "[]");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t({4}, 2.5f);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ExplicitDataConstructor)
{
    Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
    EXPECT_EQ(t.at2(0, 1), 2.0f);
    EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, DataSizeMismatchPanics)
{
    EXPECT_DEATH(Tensor({3}, std::vector<float>{1, 2}), "data size");
}

TEST(Tensor, At4RowMajor)
{
    Tensor t({2, 3, 4, 5});
    t.at4(1, 2, 3, 4) = 7.0f;
    EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 7.0f);
}

TEST(Tensor, At3RowMajor)
{
    Tensor t({2, 4, 3});
    t.at3(1, 2, 1) = 5.0f;
    EXPECT_EQ(t[1 * 12 + 2 * 3 + 1], 5.0f);
}

TEST(Tensor, NegativeDimIndexing)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.dim(-1), 4);
    EXPECT_EQ(t.dim(-3), 2);
    EXPECT_EQ(t.dim(1), 3);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6}, std::vector<float>(12, 1.0f));
    t.at2(1, 5) = 9.0f;
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.shape(), (Shape{3, 4}));
    EXPECT_EQ(r[11], 9.0f);
}

TEST(Tensor, ReshapeInfersDimension)
{
    Tensor t({4, 6});
    Tensor r = t.reshaped({2, -1});
    EXPECT_EQ(r.dim(1), 12);
}

TEST(Tensor, ReshapeBadCountPanics)
{
    Tensor t({4});
    EXPECT_DEATH(t.reshaped({3}), "reshape");
}

TEST(Tensor, SumAndMaxAbs)
{
    Tensor t({3}, std::vector<float>{1.0f, -4.0f, 2.0f});
    EXPECT_DOUBLE_EQ(t.sum(), -1.0);
    EXPECT_EQ(t.maxAbs(), 4.0f);
}

TEST(Tensor, AllCloseTolerance)
{
    Tensor a({2}, std::vector<float>{1.0f, 2.0f});
    Tensor b({2}, std::vector<float>{1.0f, 2.0f + 1e-6f});
    Tensor c({2}, std::vector<float>{1.0f, 2.1f});
    EXPECT_TRUE(a.allClose(b));
    EXPECT_FALSE(a.allClose(c));
}

TEST(Tensor, AllCloseShapeMismatch)
{
    Tensor a({2});
    Tensor b({2, 1});
    EXPECT_FALSE(a.allClose(b));
}

TEST(Tensor, RandnDeterministic)
{
    Rng r1(5);
    Rng r2(5);
    Tensor a = Tensor::randn({16}, r1);
    Tensor b = Tensor::randn({16}, r2);
    EXPECT_TRUE(a.allClose(b, 0.0f));
}

TEST(Tensor, RandnMoments)
{
    Rng rng(21);
    Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
    EXPECT_NEAR(t.sum() / t.numel(), 1.0, 0.1);
}

TEST(Tensor, HeInitVariance)
{
    Rng rng(33);
    const int64_t fan_in = 128;
    Tensor w = Tensor::heInit({256, fan_in}, rng, fan_in);
    double sq = 0.0;
    for (int64_t i = 0; i < w.numel(); ++i)
        sq += w[i] * w[i];
    const double var = sq / w.numel();
    EXPECT_NEAR(var, 2.0 / fan_in, 0.002);
}

} // namespace
} // namespace vitdyn
