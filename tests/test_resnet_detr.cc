/** @file Tests of ResNet-50 / OFA subnets and the DETR family. */

#include <gtest/gtest.h>

#include "graph/executor.hh"
#include "models/detr.hh"
#include "models/ofa.hh"
#include "models/resnet.hh"
#include "profile/flops_profile.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Resnet, StandardR50Params)
{
    ResnetConfig cfg;
    cfg.imageH = cfg.imageW = 224;
    Graph g = buildResnet(cfg);
    // Published ResNet-50: 25.6 M params, 4.1 GMACs at 224x224.
    EXPECT_NEAR(g.totalParams() / 1e6, 25.6, 1.5);
    EXPECT_NEAR(g.totalFlops() / 1e9, 4.1, 0.4);
}

TEST(Resnet, StageStrides)
{
    ResnetConfig cfg;
    cfg.imageH = 480;
    cfg.imageW = 640;
    cfg.headless = true;
    Graph g = buildResnet(cfg);
    const Shape &c5 = g.layer(g.outputs()[0]).outShape;
    EXPECT_EQ(c5, (Shape{1, 2048, 15, 20})); // stride 32
}

TEST(Resnet, WidthMultShrinksChannels)
{
    ResnetConfig narrow;
    narrow.widthMult = 0.65;
    narrow.headless = true;
    Graph g = buildResnet(narrow);
    ResnetConfig full;
    full.headless = true;
    Graph f = buildResnet(full);
    EXPECT_LT(g.totalParams(), f.totalParams());
    EXPECT_LT(g.totalFlops(), f.totalFlops());
}

TEST(Resnet, ExpandRatioControlsMidChannels)
{
    ResnetConfig lo;
    lo.expandRatio = 0.2;
    lo.headless = true;
    ResnetConfig hi;
    hi.expandRatio = 0.35;
    hi.headless = true;
    EXPECT_LT(buildResnet(lo).totalFlops(),
              buildResnet(hi).totalFlops());
}

TEST(Resnet, SmallModelExecutes)
{
    ResnetConfig cfg;
    cfg.imageH = cfg.imageW = 64;
    cfg.widthMult = 0.65;
    cfg.depths = {1, 1, 1, 1};
    cfg.numClasses = 10;
    Graph g = buildResnet(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 1, 10}));
}

TEST(Ofa, CatalogOrderedByAccuracy)
{
    auto catalog = ofaResnet50Catalog();
    ASSERT_GE(catalog.size(), 5u);
    for (size_t i = 1; i < catalog.size(); ++i)
        EXPECT_LE(catalog[i].normalizedAccuracy,
                  catalog[i - 1].normalizedAccuracy);
    EXPECT_DOUBLE_EQ(catalog.front().normalizedAccuracy, 1.0);
}

TEST(Ofa, AllAboveFivePercentDrop)
{
    // The OFA accuracy range (76.1 - 79.8 top-1) keeps every subnet
    // within 5% of the full model, which is what lets the paper claim
    // 57% time savings at <5% accuracy drop.
    for (const OfaSubnet &s : ofaResnet50Catalog())
        EXPECT_GT(s.normalizedAccuracy, 0.95) << s.name;
}

TEST(Ofa, FlopsSpanIsWide)
{
    auto catalog = ofaResnet50Catalog();
    Graph largest = buildResnet(catalog.front().config);
    Graph smallest = buildResnet(catalog.back().config);
    // The catalog must span enough compute range to offer >50% savings.
    EXPECT_LT(static_cast<double>(smallest.totalFlops()) /
                  largest.totalFlops(),
              0.45);
}

TEST(Ofa, FlopsMonotoneWithAccuracy)
{
    auto catalog = ofaResnet50Catalog();
    int64_t prev = buildResnet(catalog.front().config).totalFlops() + 1;
    for (const OfaSubnet &s : ofaResnet50Catalog()) {
        const int64_t f = buildResnet(s.config).totalFlops();
        EXPECT_LT(f, prev) << s.name;
        prev = f;
    }
}

TEST(Detr, PublishedParams)
{
    Graph g = buildDetr(detrConfig());
    // Table I: 41 M parameters.
    EXPECT_NEAR(g.totalParams() / 1e6, 41.0, 2.0);
}

TEST(Detr, BackboneDominatesFlops)
{
    Graph g = buildDetr(detrConfig());
    const double bb = static_cast<double>(stageFlops(g, "backbone"));
    EXPECT_GT(bb / g.totalFlops(), 0.75);
}

TEST(Detr, TwoHeadsWithQueryShapes)
{
    DetrConfig cfg = detrConfig();
    Graph g = buildDetr(cfg);
    ASSERT_EQ(g.outputs().size(), 2u);
    const Shape &cls = g.layer(g.findLayer("class_embed")).outShape;
    EXPECT_EQ(cls, (Shape{1, cfg.numQueries, cfg.numClasses + 1}));
    const Shape &box = g.layer(g.findLayer("bbox_embed.2")).outShape;
    EXPECT_EQ(box, (Shape{1, cfg.numQueries, 4}));
}

TEST(DeformableDetr, PublishedParamsAndFlopsRatio)
{
    Graph d = buildDetr(detrConfig());
    Graph dd = buildDeformableDetr(deformableDetrConfig());
    // Table I: 40 M params; FLOPs about 2x DETR (86 vs 173 GFLOPs).
    EXPECT_NEAR(dd.totalParams() / 1e6, 40.0, 4.0);
    EXPECT_NEAR(static_cast<double>(dd.totalFlops()) / d.totalFlops(),
                2.0, 0.4);
}

TEST(DeformableDetr, MultiScaleProjectionsExist)
{
    Graph g = buildDeformableDetr(deformableDetrConfig());
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(g.findLayer("input_proj" + std::to_string(i)), 0);
}

TEST(Detr, SmallModelExecutes)
{
    DetrConfig cfg = detrConfig();
    cfg.imageH = cfg.imageW = 64;
    cfg.numQueries = 4;
    cfg.hiddenDim = 32;
    cfg.numHeads = 4;
    cfg.ffnDim = 64;
    cfg.encoderLayers = 1;
    cfg.decoderLayers = 1;
    cfg.backbone.widthMult = 0.65;
    cfg.backbone.depths = {1, 1, 1, 1};
    cfg.backbone.headless = true;
    Graph g = buildDetr(cfg);

    Executor exec(g, 1);
    Rng rng(2);
    std::map<std::string, Tensor> inputs;
    inputs["image"] = Tensor::randn({1, 3, 64, 64}, rng);
    inputs["queries"] = Tensor::randn({1, 4, 32}, rng);
    auto outs = exec.run(inputs);
    EXPECT_EQ(outs.at("class_embed").shape(),
              (Shape{1, 4, cfg.numClasses + 1}));
    EXPECT_EQ(outs.at("bbox_embed.2").shape(), (Shape{1, 4, 4}));
}

TEST(DeformableDetr, SmallModelExecutes)
{
    DetrConfig cfg = deformableDetrConfig();
    cfg.imageH = cfg.imageW = 64;
    cfg.numQueries = 4;
    cfg.hiddenDim = 32;
    cfg.numHeads = 4;
    cfg.ffnDim = 64;
    cfg.encoderLayers = 1;
    cfg.decoderLayers = 1;
    cfg.backbone.widthMult = 0.65;
    cfg.backbone.depths = {1, 1, 1, 1};
    Graph g = buildDeformableDetr(cfg);

    Executor exec(g, 1);
    Rng rng(3);
    std::map<std::string, Tensor> inputs;
    inputs["image"] = Tensor::randn({1, 3, 64, 64}, rng);
    inputs["queries"] = Tensor::randn({1, 4, 32}, rng);
    auto outs = exec.run(inputs);
    EXPECT_EQ(outs.at("class_embed").shape(),
              (Shape{1, 4, cfg.numClasses + 1}));
}

} // namespace
} // namespace vitdyn
