/** @file Tests of budget traces and trace-driven DRT evaluation. */

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/trace.hh"

namespace vitdyn
{
namespace
{

AccuracyResourceLut
threePointLut()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config.label = "small";
    pts[0].config.depths = {1, 1, 1, 1};
    pts[0].absoluteUtil = 10.0;
    pts[0].normalizedUtil = 0.5;
    pts[0].normalizedMiou = 0.7;
    pts[1].config.label = "mid";
    pts[1].config.depths = {2, 2, 2, 2};
    pts[1].absoluteUtil = 15.0;
    pts[1].normalizedUtil = 0.75;
    pts[1].normalizedMiou = 0.9;
    pts[2].config.label = "full";
    pts[2].config.depths = {3, 3, 3, 3};
    pts[2].absoluteUtil = 20.0;
    pts[2].normalizedUtil = 1.0;
    pts[2].normalizedMiou = 1.0;
    return AccuracyResourceLut(pts, "ms");
}

TEST(Trace, SinusoidalRangeAndLength)
{
    BudgetTrace t = makeSinusoidalTrace(100, 5.0, 25.0, 20.0, 0.0, 1);
    EXPECT_EQ(t.budgets.size(), 100u);
    for (double b : t.budgets) {
        EXPECT_GE(b, 4.99);
        EXPECT_LE(b, 25.01);
    }
    // It actually oscillates.
    const auto [lo, hi] =
        std::minmax_element(t.budgets.begin(), t.budgets.end());
    EXPECT_GT(*hi - *lo, 15.0);
}

TEST(Trace, SinusoidalDeterministic)
{
    BudgetTrace a = makeSinusoidalTrace(50, 1.0, 2.0, 10.0, 0.3, 9);
    BudgetTrace b = makeSinusoidalTrace(50, 1.0, 2.0, 10.0, 0.3, 9);
    EXPECT_EQ(a.budgets, b.budgets);
}

TEST(Trace, BurstyHasTwoLevels)
{
    BudgetTrace t = makeBurstyTrace(500, 20.0, 8.0, 0.3, 7);
    int bursts = 0;
    for (double b : t.budgets) {
        EXPECT_TRUE(b == 20.0 || b == 8.0);
        bursts += b == 8.0 ? 1 : 0;
    }
    EXPECT_NEAR(bursts / 500.0, 0.3, 0.08);
}

TEST(Trace, StepChangesOnce)
{
    BudgetTrace t = makeStepTrace(10, 20.0, 9.0, 4);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(t.budgets[i], i < 4 ? 20.0 : 9.0);
}

TEST(TraceRun, AmpleBudgetGivesFullAccuracy)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeStepTrace(8, 25.0, 25.0, 0);
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.budgetMisses, 0);
    EXPECT_EQ(stats.pathSwitches, 0);
    EXPECT_DOUBLE_EQ(stats.meanAccuracy, 1.0);
    EXPECT_DOUBLE_EQ(stats.accuracyGapToBest, 0.0);
}

TEST(TraceRun, StarvedBudgetCountsMisses)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeStepTrace(6, 5.0, 5.0, 0); // below cheapest
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.budgetMisses, 6);
    EXPECT_DOUBLE_EQ(stats.meanAccuracy, 0.7); // cheapest fallback
    EXPECT_DOUBLE_EQ(stats.minAccuracy, 0.7);
}

TEST(TraceRun, StepTriggersExactlyOneSwitch)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeStepTrace(10, 25.0, 16.0, 5);
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.pathSwitches, 1);
    EXPECT_EQ(stats.budgetMisses, 0);
    // 5 frames at 1.0, 5 frames at 0.9.
    EXPECT_NEAR(stats.meanAccuracy, 0.95, 1e-9);
    EXPECT_DOUBLE_EQ(stats.minAccuracy, 0.9);
}

TEST(TraceRun, HeadroomComputedOnMetFramesOnly)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t;
    t.budgets = {40.0, 5.0}; // met with 50% headroom; missed
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.budgetMisses, 1);
    EXPECT_NEAR(stats.meanHeadroom, 0.5, 1e-9);
}

class TracePolicy : public testing::TestWithParam<int> {};

TEST_P(TracePolicy, SelectionAlwaysRespectsBudgetWhenPossible)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeSinusoidalTrace(200, 8.0, 30.0, 17.0, 0.4,
                                        GetParam());
    // Replay manually and check the invariant the engine guarantees.
    for (double budget : t.budgets) {
        const LutEntry *e = lut.lookup(budget);
        if (budget >= 10.0) {
            ASSERT_NE(e, nullptr);
        }
        if (e) {
            EXPECT_LE(e->resourceCost, budget);
        }
    }
    TraceStats stats = runTrace(lut, t);
    EXPECT_GT(stats.meanAccuracy, 0.7);
    EXPECT_LE(stats.minAccuracy, stats.meanAccuracy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracePolicy, testing::Range(1, 9));

TEST(TraceCsv, RoundTripsRecordsExactly)
{
    EngineTraceStats stats;
    InferenceTraceRecord a;
    a.frame = 0;
    a.budget = 12.300000000000001; // not representable in few digits
    a.configLabel = "full,fused"; // needs quoting
    a.budgetMet = true;
    a.healthy = false;
    a.degraded = true;
    a.retries = 2;
    a.quarantinedPaths = 1;
    InferenceTraceRecord b;
    b.frame = 1;
    b.budget = 0.1;
    b.configLabel = "say \"hi\""; // needs quote doubling
    b.budgetMet = false;
    stats.records = {a, b};

    const std::string csv = engineTraceCsv(stats);
    // Fixed header; health/quarantine columns always present.
    EXPECT_EQ(csv.rfind("frame,budget,config,budget_met,healthy,"
                        "degraded,retries,quarantined_paths\n",
                        0),
              0u);

    auto parsed = parseEngineTraceCsv(csv);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    const std::vector<InferenceTraceRecord> &records = parsed.value();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].frame, 0);
    EXPECT_DOUBLE_EQ(records[0].budget, a.budget);
    EXPECT_EQ(records[0].configLabel, "full,fused");
    EXPECT_TRUE(records[0].budgetMet);
    EXPECT_FALSE(records[0].healthy);
    EXPECT_TRUE(records[0].degraded);
    EXPECT_EQ(records[0].retries, 2);
    EXPECT_EQ(records[0].quarantinedPaths, 1u);
    EXPECT_EQ(records[1].configLabel, "say \"hi\"");
    EXPECT_DOUBLE_EQ(records[1].budget, 0.1);
    EXPECT_FALSE(records[1].budgetMet);
    EXPECT_TRUE(records[1].healthy);
}

TEST(TraceCsv, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(parseEngineTraceCsv("").isOk());
    EXPECT_FALSE(parseEngineTraceCsv("frame,nope\n").isOk());

    const std::string header =
        "frame,budget,config,budget_met,healthy,degraded,retries,"
        "quarantined_paths\n";
    // Ragged row.
    EXPECT_FALSE(parseEngineTraceCsv(header + "0,1.0,full\n").isOk());
    // Non-numeric frame and non-0/1 boolean.
    EXPECT_FALSE(
        parseEngineTraceCsv(header + "x,1.0,full,1,1,0,0,0\n").isOk());
    EXPECT_FALSE(
        parseEngineTraceCsv(header + "0,1.0,full,yes,1,0,0,0\n")
            .isOk());
    // Header alone is a valid empty trace.
    auto empty = parseEngineTraceCsv(header);
    ASSERT_TRUE(empty.isOk());
    EXPECT_TRUE(empty.value().empty());
}

} // namespace
} // namespace vitdyn
