/** @file Tests of budget traces and trace-driven DRT evaluation. */

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/trace.hh"

namespace vitdyn
{
namespace
{

AccuracyResourceLut
threePointLut()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config.label = "small";
    pts[0].config.depths = {1, 1, 1, 1};
    pts[0].absoluteUtil = 10.0;
    pts[0].normalizedUtil = 0.5;
    pts[0].normalizedMiou = 0.7;
    pts[1].config.label = "mid";
    pts[1].config.depths = {2, 2, 2, 2};
    pts[1].absoluteUtil = 15.0;
    pts[1].normalizedUtil = 0.75;
    pts[1].normalizedMiou = 0.9;
    pts[2].config.label = "full";
    pts[2].config.depths = {3, 3, 3, 3};
    pts[2].absoluteUtil = 20.0;
    pts[2].normalizedUtil = 1.0;
    pts[2].normalizedMiou = 1.0;
    return AccuracyResourceLut(pts, "ms");
}

TEST(Trace, SinusoidalRangeAndLength)
{
    BudgetTrace t = makeSinusoidalTrace(100, 5.0, 25.0, 20.0, 0.0, 1);
    EXPECT_EQ(t.budgets.size(), 100u);
    for (double b : t.budgets) {
        EXPECT_GE(b, 4.99);
        EXPECT_LE(b, 25.01);
    }
    // It actually oscillates.
    const auto [lo, hi] =
        std::minmax_element(t.budgets.begin(), t.budgets.end());
    EXPECT_GT(*hi - *lo, 15.0);
}

TEST(Trace, SinusoidalDeterministic)
{
    BudgetTrace a = makeSinusoidalTrace(50, 1.0, 2.0, 10.0, 0.3, 9);
    BudgetTrace b = makeSinusoidalTrace(50, 1.0, 2.0, 10.0, 0.3, 9);
    EXPECT_EQ(a.budgets, b.budgets);
}

TEST(Trace, BurstyHasTwoLevels)
{
    BudgetTrace t = makeBurstyTrace(500, 20.0, 8.0, 0.3, 7);
    int bursts = 0;
    for (double b : t.budgets) {
        EXPECT_TRUE(b == 20.0 || b == 8.0);
        bursts += b == 8.0 ? 1 : 0;
    }
    EXPECT_NEAR(bursts / 500.0, 0.3, 0.08);
}

TEST(Trace, StepChangesOnce)
{
    BudgetTrace t = makeStepTrace(10, 20.0, 9.0, 4);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(t.budgets[i], i < 4 ? 20.0 : 9.0);
}

TEST(TraceRun, AmpleBudgetGivesFullAccuracy)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeStepTrace(8, 25.0, 25.0, 0);
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.budgetMisses, 0);
    EXPECT_EQ(stats.pathSwitches, 0);
    EXPECT_DOUBLE_EQ(stats.meanAccuracy, 1.0);
    EXPECT_DOUBLE_EQ(stats.accuracyGapToBest, 0.0);
}

TEST(TraceRun, StarvedBudgetCountsMisses)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeStepTrace(6, 5.0, 5.0, 0); // below cheapest
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.budgetMisses, 6);
    EXPECT_DOUBLE_EQ(stats.meanAccuracy, 0.7); // cheapest fallback
    EXPECT_DOUBLE_EQ(stats.minAccuracy, 0.7);
}

TEST(TraceRun, StepTriggersExactlyOneSwitch)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeStepTrace(10, 25.0, 16.0, 5);
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.pathSwitches, 1);
    EXPECT_EQ(stats.budgetMisses, 0);
    // 5 frames at 1.0, 5 frames at 0.9.
    EXPECT_NEAR(stats.meanAccuracy, 0.95, 1e-9);
    EXPECT_DOUBLE_EQ(stats.minAccuracy, 0.9);
}

TEST(TraceRun, HeadroomComputedOnMetFramesOnly)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t;
    t.budgets = {40.0, 5.0}; // met with 50% headroom; missed
    TraceStats stats = runTrace(lut, t);
    EXPECT_EQ(stats.budgetMisses, 1);
    EXPECT_NEAR(stats.meanHeadroom, 0.5, 1e-9);
}

class TracePolicy : public testing::TestWithParam<int> {};

TEST_P(TracePolicy, SelectionAlwaysRespectsBudgetWhenPossible)
{
    AccuracyResourceLut lut = threePointLut();
    BudgetTrace t = makeSinusoidalTrace(200, 8.0, 30.0, 17.0, 0.4,
                                        GetParam());
    // Replay manually and check the invariant the engine guarantees.
    for (double budget : t.budgets) {
        const LutEntry *e = lut.lookup(budget);
        if (budget >= 10.0) {
            ASSERT_NE(e, nullptr);
        }
        if (e) {
            EXPECT_LE(e->resourceCost, budget);
        }
    }
    TraceStats stats = runTrace(lut, t);
    EXPECT_GT(stats.meanAccuracy, 0.7);
    EXPECT_LE(stats.minAccuracy, stats.meanAccuracy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracePolicy, testing::Range(1, 9));

} // namespace
} // namespace vitdyn
