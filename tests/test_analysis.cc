/** @file Tests of the static-analysis subsystem (src/analysis/):
 * diagnostics plumbing, every lint check family with positive and
 * negative fixtures, the surgery pre-validators, LUT cross-checks
 * (including a stale-cost row caught by the FLOP oracle), and the
 * engines' lint gate (veto-and-keep-serving). */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/lint.hh"
#include "analysis/liveness.hh"
#include "analysis/lut_check.hh"
#include "analysis/memory_lint.hh"
#include "analysis/shape_check.hh"
#include "engine/engine.hh"
#include "engine/model_switching.hh"
#include "graph/executor.hh"
#include "graph/passes/pass.hh"
#include "graph/passes/passes.hh"
#include "graph/surgery.hh"
#include "obs/metrics.hh"
#include "resilience/accuracy_model.hh"
#include "resilience/config.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

bool
flagged(const LintReport &report, const std::string &check)
{
    const auto &ds = report.diagnostics();
    return std::any_of(ds.begin(), ds.end(), [&](const Diagnostic &d) {
        return d.check == check;
    });
}

/** Small but real conv pipeline: input -> conv -> bn -> relu. */
Graph
tinyConvNet()
{
    Graph g("tiny");
    int x = g.addInput("x", {1, 8, 8, 8});
    Layer conv;
    conv.name = "conv";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 8;
    conv.attrs.outChannels = 16;
    conv.attrs.kernelH = conv.attrs.kernelW = 3;
    conv.attrs.padH = conv.attrs.padW = 1;
    conv.inputs = {x};
    int c = g.addLayer(std::move(conv));
    Layer bn;
    bn.name = "bn";
    bn.kind = LayerKind::BatchNorm;
    bn.attrs.inChannels = 16;
    bn.inputs = {c};
    int b = g.addLayer(std::move(bn));
    Layer relu;
    relu.name = "relu";
    relu.kind = LayerKind::ReLU;
    relu.inputs = {b};
    g.markOutput(g.addLayer(std::move(relu)));
    return g;
}

/** The engine-test SegFormer: small enough to execute in tests. */
SegformerConfig
tinyBase()
{
    SegformerConfig cfg;
    cfg.name = "segformer_tiny_lint";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

double
flopCost(const Graph &g)
{
    return static_cast<double>(g.totalFlops());
}

// ---------------------------------------------------------------------
// Diagnostics plumbing.

TEST(Diagnostics, CountsAndCleanliness)
{
    LintReport report;
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(report.toStatus().isOk());

    report.addGraph(Severity::Info, "x.info", "advisory");
    EXPECT_TRUE(report.clean()); // Info does not dirty a report.
    report.addGraph(Severity::Warning, "x.warn", "suspicious");
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.hasErrors());
    report.add(Severity::Error, "x.err", 3, "layer3", "broken");
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(report.count(Severity::Info), 1u);
    EXPECT_EQ(report.count(Severity::Warning), 1u);
    EXPECT_EQ(report.count(Severity::Error), 1u);
}

TEST(Diagnostics, ToStatusCarriesFirstError)
{
    LintReport report;
    report.addGraph(Severity::Error, "a.first", "first problem");
    report.addGraph(Severity::Error, "a.second", "second problem");
    Status status = report.toStatus();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("a.first"), std::string::npos);
    EXPECT_NE(status.message().find("first problem"), std::string::npos);
    EXPECT_NE(status.message().find("1 more"), std::string::npos);
}

TEST(Diagnostics, CsvEscapesQuotesAndCommas)
{
    LintReport report;
    report.add(Severity::Warning, "x.csv", 1, "layer,one",
               "says \"hi\", twice");
    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("\"layer,one\""), std::string::npos);
    EXPECT_NE(csv.find("\"says \"\"hi\"\", twice\""), std::string::npos);
}

TEST(Diagnostics, MergeWithContextPrefixesMessages)
{
    LintReport inner;
    inner.addGraph(Severity::Error, "x.err", "boom");
    LintReport outer;
    outer.mergeWithContext(inner, "row 2 ('small')");
    ASSERT_EQ(outer.diagnostics().size(), 1u);
    EXPECT_NE(outer.diagnostics()[0].message.find("row 2 ('small')"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Structural checks.

TEST(GraphLint, CleanGraphPasses)
{
    LintReport report = lintGraph(tinyConvNet());
    EXPECT_TRUE(report.clean()) << report.toText();
}

TEST(GraphLint, EmptyGraphFlagged)
{
    Graph g("empty");
    EXPECT_TRUE(flagged(lintGraph(g), "graph.empty"));
}

TEST(GraphLint, MissingOutputsFlagged)
{
    Graph g("no_out");
    g.addInput("x", {1, 4, 4, 4});
    EXPECT_TRUE(flagged(lintGraph(g), "graph.no-outputs"));
}

TEST(GraphLint, DanglingInputFlagged)
{
    Graph g = tinyConvNet();
    g.layer(g.outputs()[0]).inputs[0] = 99;
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "graph.dangling-input"));
}

TEST(GraphLint, ForwardInputFlagged)
{
    Graph g = tinyConvNet();
    // Make the conv (id 1) consume the relu (id 3): a forward edge.
    g.layer(1).inputs[0] = 3;
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "graph.forward-input"));
    // The forward edge also closes a cycle conv -> bn -> relu -> conv.
    EXPECT_TRUE(flagged(report, "graph.cycle"));
}

TEST(GraphLint, UnreachableLayerIsWarning)
{
    Graph g = tinyConvNet();
    Layer side;
    side.name = "side";
    side.kind = LayerKind::ReLU;
    side.inputs = {0};
    g.addLayer(std::move(side));
    LintReport report = lintGraph(g);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "graph.unreachable"));
}

TEST(GraphLint, DuplicateNameSeverityIsConfigurable)
{
    Graph g = tinyConvNet();
    g.layer(2).name = "conv"; // Same name as layer 1: aliased weights.
    EXPECT_TRUE(flagged(lintGraph(g), "graph.duplicate-name"));
    EXPECT_FALSE(lintGraph(g).hasErrors());

    LintOptions strict;
    strict.duplicateNameSeverity = Severity::Error;
    EXPECT_TRUE(lintGraph(g, strict).hasErrors());
}

TEST(GraphLint, SuppressionDropsMatchingFinding)
{
    Graph g = tinyConvNet();
    Layer side;
    side.name = "cost_only.probe";
    side.kind = LayerKind::ReLU;
    side.inputs = {0};
    g.addLayer(std::move(side));

    LintOptions options;
    options.suppressions = {{"graph.unreachable", "cost_only"}};
    EXPECT_TRUE(lintGraph(g, options).clean());
    // The suppression is scoped: other layer names still flag.
    options.suppressions = {{"graph.unreachable", "other"}};
    EXPECT_FALSE(lintGraph(g, options).clean());
}

// ---------------------------------------------------------------------
// Attribute checks (fixtures mutate attrs after insertion, since
// addLayer() would reject them up front).

TEST(AttrLint, NonDividingGroupsFlagged)
{
    Graph g = tinyConvNet();
    g.layer(1).attrs.groups = 3; // Divides neither 8 nor 16.
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "attr.conv.groups"));
}

TEST(AttrLint, ZeroStrideFlagged)
{
    Graph g = tinyConvNet();
    g.layer(1).attrs.strideW = 0;
    EXPECT_TRUE(flagged(lintGraph(g), "attr.conv.stride"));
}

TEST(AttrLint, NegativePadFlagged)
{
    Graph g = tinyConvNet();
    g.layer(1).attrs.padH = -1;
    EXPECT_TRUE(flagged(lintGraph(g), "attr.conv.pad"));
}

TEST(AttrLint, NonDividingHeadsFlagged)
{
    Graph g("attn");
    int x = g.addInput("tokens", {1, 16, 32});
    Layer score;
    score.name = "score";
    score.kind = LayerKind::AttentionScore;
    score.attrs.inFeatures = 32;
    score.attrs.numHeads = 4;
    score.inputs = {x, x};
    g.markOutput(g.addLayer(std::move(score)));
    EXPECT_TRUE(lintGraph(g).clean());

    g.layer(1).attrs.numHeads = 5; // 32 % 5 != 0.
    EXPECT_TRUE(flagged(lintGraph(g), "attr.attn.head-div"));
}

// ---------------------------------------------------------------------
// Shape flow: the independent re-derivation.

TEST(ShapeLint, CorruptedStoredShapeFlagged)
{
    Graph g = tinyConvNet();
    g.layer(1).outShape[1] = 17; // Conv out channels are 16.
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "shape.mismatch"));
}

TEST(ShapeLint, DerivationMatchesBuilderOnRealModel)
{
    Graph g = buildSegformer(tinyBase());
    for (const Layer &layer : g.layers()) {
        if (layer.kind == LayerKind::Input)
            continue;
        std::vector<Shape> ins;
        for (int id : layer.inputs)
            ins.push_back(g.layer(id).outShape);
        Result<Shape> derived = analysis::deriveShape(layer, ins);
        ASSERT_TRUE(bool(derived)) << layer.name;
        EXPECT_EQ(derived.value(), layer.outShape) << layer.name;
    }
}

TEST(AcctLint, DerivationMatchesLayerMethodsOnRealModel)
{
    Graph g = buildSegformer(tinyBase());
    for (const Layer &layer : g.layers()) {
        EXPECT_EQ(analysis::deriveMacs(layer), layer.macs())
            << layer.name;
        EXPECT_EQ(analysis::deriveFlops(layer), layer.flops())
            << layer.name;
        EXPECT_EQ(analysis::deriveParams(layer), layer.paramCount())
            << layer.name;
    }
}

// ---------------------------------------------------------------------
// Surgery pre-validation: structured errors instead of aborts.

TEST(SurgeryValidate, UnknownLayerIsError)
{
    Graph g = tinyConvNet();
    Status status = validatePruneInputChannels(g, "nope", 4);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("no layer named"),
              std::string::npos);
}

TEST(SurgeryValidate, ChannelMismatchIsErrorNotAbort)
{
    Graph g = buildSegformer(tinyBase());
    // 4 * decoderDim = 128 is the fuse width; 500 cannot fit.
    Status status =
        validatePruneInputChannels(g, "Conv2DFuse", 500);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("bad channel count"),
              std::string::npos);

    Graph copy = buildSegformer(tinyBase());
    Result<int64_t> applied =
        tryPruneInputChannels(copy, "Conv2DFuse", 500);
    EXPECT_FALSE(bool(applied));
}

TEST(SurgeryValidate, ValidOpValidatesAndApplies)
{
    Graph g = buildSegformer(tinyBase());
    ASSERT_TRUE(
        validatePruneInputChannels(g, "Conv2DFuse", 64));
    Result<int64_t> applied =
        tryPruneInputChannels(g, "Conv2DFuse", 64);
    ASSERT_TRUE(bool(applied)) << applied.status().message();
    EXPECT_GT(applied.value(), 0);
    EXPECT_TRUE(lintGraph(g).clean());
}

TEST(SurgeryValidate, BypassUnknownTagIsError)
{
    Graph g = tinyConvNet();
    Status status = validateBypassBlock(g, "no_such_stage");
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("no layers tagged"),
              std::string::npos);
}

TEST(SurgeryValidate, BadDepthsConfigIsErrorNotAbort)
{
    PruneConfig bad;
    bad.label = "bad_depths";
    bad.depths = {9, 2, 2, 2}; // Stage 0 only has 2 blocks.
    Status status = validateSegformerPrune(tinyBase(), bad);
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("outside [1,"), std::string::npos);

    Result<Graph> built = tryApplySegformerPrune(tinyBase(), bad);
    EXPECT_FALSE(bool(built));
}

// ---------------------------------------------------------------------
// LUT cross-checks.

/** LUT points whose stored costs come from the real FLOP oracle. */
std::vector<TradeoffPoint>
honestPoints(const SegformerConfig &base)
{
    std::vector<PruneConfig> configs(2);
    configs[0].label = "full";
    configs[0].depths = {2, 2, 2, 2};
    configs[1].label = "small";
    configs[1].depths = {1, 1, 1, 1};
    configs[1].fuseInChannels = 64;

    const double full_flops = flopCost(buildSegformer(base));
    std::vector<TradeoffPoint> points;
    double miou = 1.0;
    for (const PruneConfig &config : configs) {
        TradeoffPoint p;
        p.config = config;
        p.absoluteUtil = flopCost(applySegformerPrune(base, config));
        p.normalizedUtil = p.absoluteUtil / full_flops;
        p.normalizedMiou = miou;
        miou -= 0.2;
        points.push_back(std::move(p));
    }
    return points;
}

TEST(LutCheck, HonestLutPassesWithCostOracle)
{
    AccuracyResourceLut lut(honestPoints(tinyBase()), "flops");
    LutCheckOptions options;
    options.cost = flopCost;
    LintReport report = checkLut(lut, ModelFamily::Segformer,
                                 tinyBase(), SwinConfig{}, options);
    EXPECT_TRUE(report.clean()) << report.toText();
}

TEST(LutCheck, StaleCostRowFlagged)
{
    auto points = honestPoints(tinyBase());
    // Stale row: stored cost halved, as if swept from older code.
    points[1].absoluteUtil *= 0.5;
    AccuracyResourceLut lut(points, "flops");
    LutCheckOptions options;
    options.cost = flopCost;
    LintReport report = checkLut(lut, ModelFamily::Segformer,
                                 tinyBase(), SwinConfig{}, options);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "lut.stale-cost")) << report.toText();
}

TEST(LutCheck, InfeasibleConfigRowFlagged)
{
    auto points = honestPoints(tinyBase());
    points[1].config.depths = {7, 7, 7, 7};
    AccuracyResourceLut lut(points, "flops");
    LintReport report = checkLut(lut, ModelFamily::Segformer,
                                 tinyBase(), SwinConfig{}, {});
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "lut.config")) << report.toText();
}

TEST(LutCheck, NormalizedCostDriftWarnsWithoutOracle)
{
    auto points = honestPoints(tinyBase());
    points[1].normalizedUtil = 0.01; // Way off the real FLOP ratio.
    AccuracyResourceLut lut(points, "flops");
    LintReport report = checkLut(lut, ModelFamily::Segformer,
                                 tinyBase(), SwinConfig{}, {});
    EXPECT_FALSE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "lut.flop-drift")) << report.toText();
}

TEST(LutCheck, EmptyLutFlagged)
{
    AccuracyResourceLut lut;
    LintReport report = checkLut(lut, ModelFamily::Segformer,
                                 tinyBase(), SwinConfig{}, {});
    EXPECT_TRUE(flagged(report, "lut.empty"));
}

// ---------------------------------------------------------------------
// Engine lint gate: veto the bad config, keep serving on the rest.

TEST(EngineLintGate, StaleLutRowIsVetoedAndEngineStillServes)
{
    auto points = honestPoints(tinyBase());
    points[1].absoluteUtil *= 0.5; // Stale FLOP entry for "small".
    AccuracyResourceLut lut(points, "flops");

    DrtEngineOptions options;
    options.prewarm = false;
    options.lint.cost = flopCost;
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     std::move(lut), 17, options);

    ASSERT_EQ(engine.numPaths(), 2u);
    // The stale row sorted to index 0 (it claims half its real cost).
    EXPECT_EQ(engine.numVetoed(), 1u);
    EXPECT_TRUE(engine.isVetoed(0));
    EXPECT_TRUE(engine.isQuarantined(0));
    EXPECT_FALSE(engine.isVetoed(1));

    // A budget that nominally selects the vetoed path must be served
    // by a healthy one instead of aborting.
    Rng rng(5);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    DrtResult result = engine.infer(image, 1.0e18);
    EXPECT_TRUE(result.healthy);
    EXPECT_EQ(result.configLabel, "full");
}

TEST(EngineLintGate, InfeasibleConfigVetoedWithoutCostOracle)
{
    auto points = honestPoints(tinyBase());
    points[1].config.depths = {9, 9, 9, 9};
    AccuracyResourceLut lut(points, "flops");

    DrtEngineOptions options;
    options.prewarm = false;
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     std::move(lut), 17, options);
    EXPECT_EQ(engine.numVetoed(), 1u);
}

TEST(EngineLintGate, AllRowsVetoedFailsCreateRecoverably)
{
    auto points = honestPoints(tinyBase());
    for (TradeoffPoint &p : points)
        p.config.depths = {9, 9, 9, 9};
    AccuracyResourceLut lut(points, "flops");

    Result<std::unique_ptr<DrtEngine>> engine =
        DrtEngine::create(ModelFamily::Segformer, tinyBase(),
                          SwinConfig{}, std::move(lut), 17, {});
    ASSERT_FALSE(bool(engine));
    EXPECT_NE(engine.status().message().find("failed lint"),
              std::string::npos);
}

TEST(EngineLintGate, ModelSwitchingDropsInfeasibleCandidate)
{
    Counter &dropped = MetricsRegistry::instance().counter(
        "lint.dropped_candidates");
    const uint64_t before = dropped.value();

    std::vector<TrainedVariant> variants(1);
    variants[0].name = "tiny";
    variants[0].normalizedMiou = 1.0;
    variants[0].segConfig = tinyBase();

    std::vector<PruneConfig> candidates(2);
    candidates[0].label = "ok";
    candidates[0].depths = {1, 1, 1, 1};
    candidates[1].label = "broken";
    candidates[1].depths = {9, 9, 9, 9};

    AccuracyModel accuracy(PrunedModelKind::SegformerB2Ade);
    ModelSwitchingEngine engine(ModelFamily::Segformer, variants,
                                candidates, accuracy, flopCost);
    EXPECT_EQ(dropped.value(), before + 1);

    // The surviving frontier still answers budget queries.
    auto choice = engine.select(1.0e18);
    EXPECT_FALSE(choice.name.empty());
}

// ---------------------------------------------------------------------
// Liveness analysis and the certified memory plan.

/** tinyConvNet with the two sound elementwise steals annotated by
 *  hand (bn steals conv's buffer, relu steals bn's). */
Graph
annotatedConvNet()
{
    Graph g = tinyConvNet();
    g.layer(2).inplacePriority = 8;  // bn
    g.layer(3).inplacePriority = 10; // relu
    return g;
}

TEST(Liveness, IntervalsAndPeakOnChain)
{
    // input(2048 B) -> conv(4096 B) -> bn(4096 B) -> relu(4096 B).
    const analysis::LivenessInfo info =
        analysis::analyzeLiveness(tinyConvNet());
    ASSERT_EQ(info.buffers.size(), 4u);

    // Charge-before-free: a buffer survives through its last
    // consumer's step, so each edge overlaps by exactly one step.
    EXPECT_EQ(info.buffers[0].birth, 0);
    EXPECT_EQ(info.buffers[0].death, 1);
    EXPECT_FALSE(info.buffers[0].pinned);
    EXPECT_EQ(info.buffers[1].death, 2);
    EXPECT_EQ(info.buffers[2].death, 3);
    EXPECT_EQ(info.buffers[0].bytes, 2048u);
    EXPECT_EQ(info.buffers[1].bytes, 4096u);

    EXPECT_EQ(info.totalBytes, 14336u);
    EXPECT_EQ(info.maxLiveBytes, 8192u); // conv + bn at step 2.
    EXPECT_EQ(info.maxLiveTensors, 2u);
    EXPECT_EQ(info.peakStep, 2);

    EXPECT_TRUE(info.interferes(1, 2));  // conv live at bn's step.
    EXPECT_FALSE(info.interferes(0, 2)); // input dead before bn.
}

TEST(Liveness, OutputAndConsumerlessBuffersArePinned)
{
    Graph g("pins");
    int x = g.addInput("x", {1, 4, 4, 4});
    Layer relu;
    relu.name = "relu";
    relu.kind = LayerKind::ReLU;
    relu.inputs = {x};
    g.markOutput(g.addLayer(std::move(relu)));
    Layer dead;
    dead.name = "dead_gelu"; // No consumers, not an output.
    dead.kind = LayerKind::GELU;
    dead.inputs = {x};
    g.addLayer(std::move(dead));

    const analysis::LivenessInfo info = analysis::analyzeLiveness(g);
    const int n = static_cast<int>(g.numLayers());
    EXPECT_FALSE(info.buffers[0].pinned); // Input is consumed.
    EXPECT_TRUE(info.buffers[1].pinned);  // Graph output.
    EXPECT_TRUE(info.buffers[2].pinned);  // Consumer-less.
    EXPECT_EQ(info.buffers[1].death, n);
    EXPECT_EQ(info.buffers[2].death, n);
    // Everything is simultaneously live at the end.
    EXPECT_EQ(info.maxLiveBytes, info.totalBytes);
}

TEST(Liveness, OffsetsDisjointAndArenaCoversLivePeakOnRealModel)
{
    const Graph g = buildSegformer(tinyBase());
    const analysis::LivenessInfo info = analysis::analyzeLiveness(g);
    std::vector<int64_t> offsets;
    const size_t arena = analysis::assignOffsets(info, {}, &offsets);

    EXPECT_GE(arena, info.maxLiveBytes);
    EXPECT_EQ(arena, analysis::certifiedPeakBytes(g));

    // Interfering buffers must occupy disjoint byte ranges.
    const int n = static_cast<int>(info.buffers.size());
    ASSERT_EQ(static_cast<int>(offsets.size()), n);
    for (int a = 0; a < n; ++a) {
        const int64_t end_a =
            offsets[a] + static_cast<int64_t>(info.buffers[a].bytes);
        EXPECT_LE(end_a, static_cast<int64_t>(arena));
        for (int b = a + 1; b < n; ++b) {
            if (!info.interferes(a, b))
                continue;
            const int64_t end_b =
                offsets[b] +
                static_cast<int64_t>(info.buffers[b].bytes);
            EXPECT_TRUE(end_a <= offsets[b] || end_b <= offsets[a])
                << "buffers " << a << " and " << b << " overlap";
        }
    }
}

TEST(Liveness, PlanIsDeterministic)
{
    const Graph g = buildSegformer(tinyBase());
    const analysis::MemoryPlan first = analysis::planMemory(g);
    const analysis::MemoryPlan second = analysis::planMemory(g);
    EXPECT_EQ(first.certifiedPeakBytes, second.certifiedPeakBytes);
    EXPECT_EQ(first.plannedPeakBytes, second.plannedPeakBytes);
    EXPECT_EQ(first.offsets, second.offsets);
    EXPECT_EQ(first.plannedOffsets, second.plannedOffsets);
}

TEST(Liveness, VerifiedStealsShrinkPlannedArena)
{
    const Graph g = annotatedConvNet();
    const analysis::MemoryPlan plan = analysis::planMemory(g);

    EXPECT_EQ(plan.maxLiveBytes, 8192u);
    // Best-fit packing pays fragmentation over the tight live peak
    // (bn cannot reuse the dead input's 2048 B slot), but the bound
    // stays sound: certified >= maxLive always.
    EXPECT_EQ(plan.certifiedPeakBytes, 10240u);
    // conv+bn+relu coalesce to one 4096 B group beside the input.
    EXPECT_EQ(plan.plannedPeakBytes, 6144u);
    EXPECT_EQ(plan.stealSavedBytes, 4096u);
    // The coalesced plan is a real plan, never below the no-steal
    // liveness floor of its own merged lifetimes.
    EXPECT_LT(plan.plannedPeakBytes, plan.certifiedPeakBytes);
}

// ---------------------------------------------------------------------
// Memory lint: the in-place verifier.

TEST(MemoryLint, RealModelPipelineIsMemoryClean)
{
    Graph g = buildSegformer(tinyBase());
    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_TRUE(report) << report.status().message();

    // The pass filters its candidates through the verifier, so the
    // default lint (memory family included) is clean by construction.
    const LintReport lint = lintGraph(g);
    EXPECT_TRUE(lint.clean()) << lint.toText();

    // And it actually annotated something worth verifying.
    LintReport verify;
    const std::vector<int> targets =
        analysis::verifiedStealTargets(g, &verify);
    EXPECT_TRUE(verify.clean()) << verify.toText();
    EXPECT_TRUE(std::any_of(targets.begin(), targets.end(),
                            [](int t) { return t >= 0; }));
}

TEST(MemoryLint, NotLastConsumerStealRejected)
{
    Graph g = annotatedConvNet();
    // A second, later reader of conv's buffer: bn's steal would free
    // a buffer the gelu still needs.
    Layer late;
    late.name = "late_reader";
    late.kind = LayerKind::GELU;
    late.inputs = {1}; // conv
    g.markOutput(g.addLayer(std::move(late)));

    LintReport report;
    analysis::checkMemory(g, report);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "mem.inplace.not-last"))
        << report.toText();

    const std::vector<int> targets =
        analysis::verifiedStealTargets(g, nullptr);
    EXPECT_EQ(targets[2], -1); // bn's steal is unsound now...
    EXPECT_GE(targets[3], 0);  // ...relu's (of bn) is untouched.
}

TEST(MemoryLint, GraphOutputStealRejected)
{
    Graph g = tinyConvNet();
    g.markOutput(2); // bn is now also a graph output...
    g.layer(3).inplacePriority = 10; // ...and relu tries to steal it.

    LintReport report;
    analysis::checkMemory(g, report);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "mem.inplace.output"))
        << report.toText();
}

TEST(MemoryLint, ShapeMismatchStealRejected)
{
    Graph g = annotatedConvNet();
    g.layer(3).outShape = {1, 16, 8, 4}; // Corrupt relu's shape.
    LintReport report;
    analysis::checkMemory(g, report);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "mem.inplace.shape"))
        << report.toText();
}

TEST(MemoryLint, NonElementwiseKindStealRejected)
{
    Graph g = tinyConvNet();
    g.layer(1).inplacePriority = 5; // Conv2d cannot run in place.
    LintReport report;
    analysis::checkMemory(g, report);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "mem.inplace.kind"))
        << report.toText();
}

TEST(MemoryLint, AliasThroughForwarderRejected)
{
    // conv's buffer reaches relu through an Identity forwarder while
    // a later gelu still reads conv directly: in a zero-copy plan the
    // steal would free the aliased buffer under the gelu.
    Graph g("alias");
    int x = g.addInput("x", {1, 4, 8, 8});
    Layer conv;
    conv.name = "conv";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 4;
    conv.attrs.kernelH = conv.attrs.kernelW = 1;
    conv.inputs = {x};
    int c = g.addLayer(std::move(conv));
    Layer fwd;
    fwd.name = "fwd";
    fwd.kind = LayerKind::Identity;
    fwd.inputs = {c};
    int f = g.addLayer(std::move(fwd));
    Layer relu;
    relu.name = "relu";
    relu.kind = LayerKind::ReLU;
    relu.inputs = {f};
    relu.inplacePriority = 10;
    g.markOutput(g.addLayer(std::move(relu)));
    Layer gelu;
    gelu.name = "late_alias_reader";
    gelu.kind = LayerKind::GELU;
    gelu.inputs = {c};
    g.markOutput(g.addLayer(std::move(gelu)));

    LintReport report;
    analysis::checkMemory(g, report);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "mem.inplace.alias"))
        << report.toText();

    // The annotation pass must refuse to create this hazard itself.
    Graph fresh = g;
    fresh.layer(3).inplacePriority = 0;
    Result<int> rewrites =
        makeInplacePriorityPass()->run(fresh, PassOptions{});
    ASSERT_TRUE(rewrites) << rewrites.status().message();
    EXPECT_EQ(fresh.layer(3).inplacePriority, 0);
}

TEST(MemoryLint, FrontierCertifiedCoversMeasuredPeak)
{
    // Every frontier config of the tiny model: build, rewrite with
    // the standard pipeline, execute, and check measured <= certified.
    const SegformerConfig base = tinyBase();
    std::vector<PruneConfig> configs(3);
    configs[0].label = "full";
    configs[0].depths = {2, 2, 2, 2};
    configs[1].label = "mid";
    configs[1].depths = {2, 1, 1, 2};
    configs[2].label = "small";
    configs[2].depths = {1, 1, 1, 1};
    configs[2].fuseInChannels = 64;

    Rng rng(11);
    const Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    for (const PruneConfig &config : configs) {
        Result<Graph> built = tryApplySegformerPrune(base, config);
        ASSERT_TRUE(built) << config.label;
        Graph g = std::move(built.value());
        PassManager pipeline = PassManager::standardPipeline();
        ASSERT_TRUE(pipeline.run(g)) << config.label;

        Executor exec(g, 17);
        exec.runSimple(image);
        const size_t measured = exec.lastRunStats().peakLiveBytes;
        EXPECT_GT(measured, 0u) << config.label;
        EXPECT_LE(measured, exec.certifiedPeakBytes())
            << config.label;
    }
}

TEST(LutCheck, MemoryBudgetRowFlagged)
{
    AccuracyResourceLut lut(honestPoints(tinyBase()), "flops");
    LutCheckOptions options;
    options.cost = flopCost;

    // A generous budget passes...
    options.memoryBudgetBytes = size_t{1} << 40;
    LintReport ok = checkLut(lut, ModelFamily::Segformer, tinyBase(),
                             SwinConfig{}, options);
    EXPECT_TRUE(ok.clean()) << ok.toText();

    // ...an impossible one is a named per-row error.
    options.memoryBudgetBytes = 1;
    LintReport bad = checkLut(lut, ModelFamily::Segformer, tinyBase(),
                              SwinConfig{}, options);
    EXPECT_TRUE(bad.hasErrors());
    EXPECT_TRUE(flagged(bad, "lut.memory-budget")) << bad.toText();
}

TEST(EngineLintGate, OverBudgetConfigVetoedAtLoad)
{
    const SegformerConfig base = tinyBase();
    auto points = honestPoints(base);
    const size_t peak_small = analysis::certifiedPeakBytes(
        applySegformerPrune(base, points[1].config));
    const size_t peak_full = analysis::certifiedPeakBytes(
        applySegformerPrune(base, points[0].config));
    ASSERT_LT(peak_small, peak_full);

    // Budget between the two peaks: "full" must be vetoed at load,
    // "small" keeps serving, and the stored per-path bounds match the
    // analyzer's.
    DrtEngineOptions options;
    options.prewarm = false;
    options.lint.cost = flopCost;
    options.lint.memoryBudgetBytes = (peak_small + peak_full) / 2;
    AccuracyResourceLut lut(points, "flops");
    DrtEngine engine(ModelFamily::Segformer, base, SwinConfig{},
                     std::move(lut), 17, options);

    ASSERT_EQ(engine.numPaths(), 2u);
    EXPECT_EQ(engine.numVetoed(), 1u);
    size_t vetoed = 0;
    for (size_t i = 0; i < engine.numPaths(); ++i) {
        if (engine.isVetoed(i)) {
            ++vetoed;
            EXPECT_EQ(engine.certifiedPeakBytes(i), peak_full);
        } else {
            EXPECT_EQ(engine.certifiedPeakBytes(i), peak_small);
        }
    }
    EXPECT_EQ(vetoed, 1u);

    Rng rng(5);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    DrtResult result = engine.infer(image, 1.0e18);
    EXPECT_TRUE(result.healthy);
    EXPECT_EQ(result.configLabel, "small");

    // A budget below every config's bound fails create() recoverably.
    DrtEngineOptions tight = options;
    tight.lint.memoryBudgetBytes = peak_small / 2;
    Result<std::unique_ptr<DrtEngine>> none = DrtEngine::create(
        ModelFamily::Segformer, base, SwinConfig{},
        AccuracyResourceLut(honestPoints(base), "flops"), 17, tight);
    EXPECT_FALSE(bool(none));
}

TEST(ExecutorMemory, StealMetricsAndRuntimeCrossCheck)
{
    Counter &steal_bytes =
        MetricsRegistry::instance().counter("exec.steal_reuse_bytes");
    const uint64_t before = steal_bytes.value();

    const Graph g = annotatedConvNet();
    Executor exec(g, 3);
    Rng rng(9);
    exec.runSimple(Tensor::randn({1, 8, 8, 8}, rng));

    // Both annotated steals fired: 4096 B each for bn and relu.
    const Executor::RunStats &stats = exec.lastRunStats();
    EXPECT_EQ(stats.stealReuseBytes, 8192u);
    EXPECT_EQ(steal_bytes.value(), before + 8192u);
    EXPECT_LE(stats.peakLiveBytes, exec.certifiedPeakBytes());

    Gauge &peak_gauge =
        MetricsRegistry::instance().gauge("exec.peak_live_bytes");
    EXPECT_EQ(static_cast<size_t>(peak_gauge.value()),
              stats.peakLiveBytes);
}

} // namespace
} // namespace vitdyn
