/** @file Tests of the observability layer: metrics registry,
 * histogram percentiles and exemplars, scoped spans with request-id
 * tagging, the exporters (including escaping round-trips through the
 * in-tree JSON parser), and the anomaly flight recorder. */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/request_context.hh"
#include "obs/span.hh"
#include "util/json.hh"

namespace vitdyn
{
namespace
{

TEST(Histogram, QuantilesExactAtBucketBoundaries)
{
    // 1..100 with bounds at the quantile targets: the Prometheus
    // interpolation is exact when the rank lands on a bucket edge.
    Histogram h({50.0, 95.0, 99.0, 100.0});
    for (int v = 1; v <= 100; ++v)
        h.observe(static_cast<double>(v));

    const HistogramSnapshot snap = h.snapshot("h");
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.00), 100.0);
}

TEST(Histogram, QuantileInterpolatesInsideBucket)
{
    // One bucket spanning (min, 10]: quantiles interpolate linearly
    // between the observed min and the bucket bound.
    Histogram h({10.0});
    h.observe(2.0);
    h.observe(4.0);
    h.observe(6.0);
    h.observe(8.0);

    const HistogramSnapshot snap = h.snapshot("h");
    // target = 0.5 * 4 = 2 of 4 in-bucket -> halfway from min to 10.
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0 + 0.5 * (10.0 - 2.0));
}

TEST(Histogram, EmptySnapshotIsAllZero)
{
    Histogram h({1.0, 2.0});
    const HistogramSnapshot snap = h.snapshot("empty");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST(Histogram, OverflowBucketEndsAtObservedMax)
{
    Histogram h({1.0});
    h.observe(5.0);
    h.observe(9.0); // both above every bound -> overflow bucket
    const HistogramSnapshot snap = h.snapshot("h");
    EXPECT_EQ(snap.buckets.back(), 2u);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 9.0);
}

TEST(Histogram, ResetZeroesInPlace)
{
    Histogram h({1.0});
    h.observe(0.5);
    h.reset();
    const HistogramSnapshot snap = h.snapshot("h");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    h.observe(3.0);
    EXPECT_DOUBLE_EQ(h.snapshot("h").min, 3.0);
}

TEST(Histogram, ExemplarsLinkBucketsToObservationIds)
{
    Histogram h({10.0, 100.0});
    h.observe(5.0, 11);   // first bucket
    h.observe(50.0, 22);  // second bucket
    h.observe(60.0, 23);  // second bucket again: last write wins
    h.observe(500.0, 33); // overflow bucket

    const HistogramSnapshot snap = h.snapshot("h");
    ASSERT_EQ(snap.exemplarIds.size(), 3u);
    EXPECT_EQ(snap.exemplarIds[0], 11u);
    EXPECT_EQ(snap.exemplarIds[1], 23u);
    EXPECT_EQ(snap.exemplarIds[2], 33u);
    EXPECT_DOUBLE_EQ(snap.exemplarValues[1], 60.0);

    // The tail quantile names the overflow bucket's exemplar — "p99
    // is 500 ms, e.g. request 33".
    EXPECT_EQ(snap.exemplarNear(0.99), 33u);
    // A quantile whose bucket lacks an exemplar walks down to the
    // nearest lower bucket that has one.
    Histogram sparse({10.0, 100.0});
    sparse.observe(5.0, 44);
    sparse.observe(50.0); // no exemplar recorded in this bucket
    EXPECT_EQ(sparse.snapshot("s").exemplarNear(0.99), 44u);

    h.reset();
    const HistogramSnapshot cleared = h.snapshot("h");
    EXPECT_EQ(cleared.exemplarIds[2], 0u);
    EXPECT_EQ(cleared.exemplarNear(0.99), 0u);
}

TEST(Metrics, ExemplarsAppearInJsonExportOnly)
{
    MetricsRegistry registry;
    registry.histogram("lat", {10.0, 100.0}).observe(500.0, 77);
    const MetricsSnapshot snap = registry.snapshot();
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
    EXPECT_NE(json.find("\"req\": 77"), std::string::npos);
    // CSV keeps its fixed column set — no ragged exemplar columns.
    EXPECT_EQ(snap.toCsv().find("exemplar"), std::string::npos);

    // The JSON export parses cleanly and carries the exemplar.
    Result<JsonValue> parsed = parseJson(json);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    const JsonValue *hists = parsed.value().find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *hist = hists->find("lat");
    ASSERT_NE(hist, nullptr);
    const JsonValue *buckets = hist->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->isArray());
    const JsonValue &overflow = buckets->array().back();
    EXPECT_DOUBLE_EQ(overflow.numberOr("exemplar", -1.0), -1.0);
    const JsonValue *ex = overflow.find("exemplar");
    ASSERT_NE(ex, nullptr);
    EXPECT_DOUBLE_EQ(ex->numberOr("req", 0.0), 77.0);
}

TEST(Metrics, ConflictingHistogramBoundsKeepFirstRegistration)
{
    MetricsRegistry registry;
    Histogram &first = registry.histogram("h", {1.0, 2.0});
    // A later caller with different non-empty bounds gets the
    // existing histogram (and a one-time warning, not a new object).
    Histogram &second = registry.histogram("h", {5.0, 6.0, 7.0});
    EXPECT_EQ(&first, &second);
    ASSERT_EQ(second.bounds().size(), 2u);
    EXPECT_DOUBLE_EQ(second.bounds()[0], 1.0);
    // Empty bounds (the common "look it up again" case) never warn
    // and also return the registered histogram.
    EXPECT_EQ(&registry.histogram("h"), &first);
}

TEST(Metrics, ConcurrentCounterIncrementsAllLand)
{
    MetricsRegistry registry;
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry] {
            Counter &c = registry.counter("hits");
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(registry.counter("hits").value(),
              static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, ConcurrentHistogramObservesAllLand)
{
    MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kObs = 5000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry, t] {
            Histogram &h = registry.histogram("lat", {1.0, 2.0});
            for (int i = 0; i < kObs; ++i)
                h.observe(t == 0 ? 0.5 : 1.5);
        });
    for (std::thread &t : threads)
        t.join();

    const HistogramSnapshot snap =
        registry.histogram("lat").snapshot("lat");
    EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kObs);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 1.5);
    EXPECT_EQ(snap.buckets[0], static_cast<uint64_t>(kObs));
    EXPECT_EQ(snap.buckets[1], static_cast<uint64_t>(3 * kObs));
}

TEST(Metrics, RegistryReferencesSurviveReset)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("events");
    c.add(41);
    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(1);
    EXPECT_EQ(registry.snapshot().counterValue("events"), 1u);
}

TEST(Metrics, SnapshotCsvIsByteStable)
{
    MetricsRegistry registry;
    registry.counter("drt.frames").add(3);
    registry.gauge("controller.bias").set(1.25);
    Histogram &h = registry.histogram("lat", {1.0, 2.0});
    h.observe(1.0);
    h.observe(2.0);

    EXPECT_EQ(registry.snapshot().toCsv(),
              "kind,name,value,count,sum,min,max,p50,p95,p99\n"
              "counter,drt.frames,3,,,,,,,\n"
              "gauge,controller.bias,1.25,,,,,,,\n"
              "histogram,lat,,2,3,1,2,1,1.9,1.98\n");
}

#ifdef VITDYN_TRACING_DISABLED
TEST(Span, CompiledOutSpansAreInert)
{
    Tracer tracer;
    tracer.setEnabled(true); // warns; stays off
    EXPECT_FALSE(tracer.enabled());
    ScopedSpan span(tracer, "x", "test");
    EXPECT_FALSE(span.active());
}
#else

/** A tracer on a deterministic clock advancing 1 us per read. */
struct FixedClockTracer
{
    Tracer tracer;
    uint64_t nowNs = 0;

    FixedClockTracer()
    {
        tracer.setClock([this] {
            const uint64_t t = nowNs;
            nowNs += 1000;
            return t;
        });
        tracer.setEnabled(true);
    }
};

TEST(Span, DisabledTracerRecordsNothing)
{
    Tracer tracer;
    {
        ScopedSpan span(tracer, "x", "test");
        EXPECT_FALSE(span.active());
        span.arg("k", "v"); // no-op, must not crash
    }
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Span, NestingDepthAndOrdering)
{
    FixedClockTracer fixture;
    Tracer &tracer = fixture.tracer;
    {
        ScopedSpan outer(tracer, "frame", "engine");
        {
            ScopedSpan inner(tracer, "layer", "executor");
        }
        tracer.instant("quarantine", "engine");
    }

    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    // Inner closes first, the instant lands next, outer closes last.
    EXPECT_EQ(events[0].name, "layer");
    EXPECT_EQ(events[0].depth, 1);
    EXPECT_EQ(events[1].name, "quarantine");
    EXPECT_TRUE(events[1].instant);
    EXPECT_EQ(events[2].name, "frame");
    EXPECT_EQ(events[2].depth, 0);
    // The outer span starts before and ends after the inner one.
    EXPECT_LT(events[2].startNs, events[0].startNs);
    EXPECT_GT(events[2].startNs + events[2].durationNs,
              events[0].startNs + events[0].durationNs);
}

TEST(Span, RingOverflowDropsOldest)
{
    Tracer tracer(4);
    tracer.setEnabled(true);
    for (int i = 0; i < 6; ++i)
        tracer.instant("e" + std::to_string(i), "test");

    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    EXPECT_EQ(events.front().name, "e2");
    EXPECT_EQ(events.back().name, "e5");
}

TEST(Span, ChromeTraceJsonIsByteStable)
{
    // Hand-built events: no thread ids or clocks involved, so the
    // exporter output must match byte for byte.
    SpanEvent outer;
    outer.name = "drt.infer";
    outer.category = "engine";
    outer.startNs = 1000;
    outer.durationNs = 4500;
    outer.tid = 1;
    outer.seq = 1;
    outer.args = {{"budget", "12.5", true}, {"path", "full", false}};

    SpanEvent inner;
    inner.name = "layer \"a\"";
    inner.category = "executor";
    inner.startNs = 2000;
    inner.durationNs = 1000;
    inner.tid = 1;
    inner.seq = 0; // recorded first (closed first), starts later
    inner.depth = 1;

    EXPECT_EQ(
        chromeTraceJson({inner, outer}),
        "{\"traceEvents\":[\n"
        "{\"name\":\"drt.infer\",\"cat\":\"engine\",\"ph\":\"X\","
        "\"ts\":1.000,\"dur\":4.500,\"pid\":1,\"tid\":1,"
        "\"args\":{\"budget\":12.5,\"path\":\"full\"}},\n"
        "{\"name\":\"layer \\\"a\\\"\",\"cat\":\"executor\","
        "\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000,\"pid\":1,"
        "\"tid\":1}\n"
        "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(Span, ScopedSpanArgsRenderTyped)
{
    FixedClockTracer fixture;
    Tracer &tracer = fixture.tracer;
    {
        ScopedSpan span(tracer, "s", "test");
        span.arg("str", "text");
        span.arg("int", static_cast<int64_t>(-3));
        span.arg("flag", true);
        span.arg("ratio", 0.5);
    }
    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 1u);
    ASSERT_EQ(events[0].args.size(), 4u);
    EXPECT_FALSE(events[0].args[0].numeric);
    EXPECT_TRUE(events[0].args[1].numeric);
    EXPECT_EQ(events[0].args[1].value, "-3");
    EXPECT_EQ(events[0].args[2].value, "true");
    EXPECT_EQ(events[0].args[3].value, "0.5");
}
TEST(Span, RequestScopeTagsSpansAndRestores)
{
    FixedClockTracer fixture;
    Tracer &tracer = fixture.tracer;
    RequestContext outer_ctx(42, 0);
    RequestContext inner_ctx(43, 1);

    EXPECT_EQ(Tracer::threadRequestId(), 0u);
    {
        RequestScope outer(&outer_ctx);
        EXPECT_EQ(RequestContext::current(), &outer_ctx);
        EXPECT_EQ(Tracer::threadRequestId(), 42u);
        ScopedSpan span(tracer, "work", "test");
        {
            RequestScope inner(&inner_ctx);
            EXPECT_EQ(Tracer::threadRequestId(), 43u);
            ScopedSpan nested(tracer, "nested", "test");
        }
        // The inner scope restored the outer tag on exit.
        EXPECT_EQ(Tracer::threadRequestId(), 42u);
        // A nullptr context is a no-op scope, not a reset-to-zero.
        RequestScope noop(nullptr);
        EXPECT_EQ(Tracer::threadRequestId(), 42u);
    }
    EXPECT_EQ(RequestContext::current(), nullptr);
    EXPECT_EQ(Tracer::threadRequestId(), 0u);
    tracer.instant("untagged", "test");

    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].name, "nested");
    EXPECT_EQ(events[0].requestId, 43u);
    EXPECT_EQ(events[1].name, "work");
    EXPECT_EQ(events[1].requestId, 42u);
    EXPECT_EQ(events[2].requestId, 0u);

    // Tagged spans export a "req" arg; untagged ones stay arg-free.
    const std::string json = chromeTraceJson(events);
    EXPECT_NE(json.find("\"req\":42"), std::string::npos);
    EXPECT_NE(json.find("\"req\":43"), std::string::npos);
    Result<JsonValue> parsed = parseJson(json);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    for (const JsonValue &ev :
         parsed.value().find("traceEvents")->array()) {
        const JsonValue *args = ev.find("args");
        const bool tagged =
            args && args->find("req") != nullptr;
        EXPECT_EQ(tagged, ev.stringOr("name", "") != "untagged");
    }
}

TEST(Span, RequestContextAccumulatesStageTime)
{
    RequestContext ctx(9, 0);
    ctx.admissionMs = 0.25;
    ctx.queueMs = 3.0;
    ctx.batchAssemblyMs = 0.5;
    ctx.addStageNs(OpCategory::MatMul, 2'000'000);
    ctx.addStageNs(OpCategory::MatMul, 1'000'000);
    ctx.addStageNs(OpCategory::Softmax, 500'000);
    ctx.addPoolWaitNs(250'000);
    ctx.setEngineNs(5'000'000);

    const LatencyBreakdown b = ctx.finishBreakdown();
    EXPECT_DOUBLE_EQ(b.admissionMs, 0.25);
    EXPECT_DOUBLE_EQ(b.queueMs, 3.0);
    EXPECT_DOUBLE_EQ(b.engineMs, 5.0);
    EXPECT_DOUBLE_EQ(b.kernelMs, 3.5);
    EXPECT_DOUBLE_EQ(b.poolWaitMs, 0.25);
    EXPECT_DOUBLE_EQ(
        b.stageMs[static_cast<size_t>(OpCategory::MatMul)], 3.0);
    // kernel (3.5) beats queue (3.0): dominant names the top category.
    EXPECT_EQ(b.dominantStage(), "kernel:MatMul");

    LatencyBreakdown queued;
    queued.queueMs = 10.0;
    queued.engineMs = 2.0;
    EXPECT_EQ(queued.dominantStage(), "queue");
}

TEST(Span, DroppedSpansLandInMetricsCounter)
{
    const uint64_t before =
        MetricsRegistry::instance().counter("trace.dropped_spans")
            .value();
    Tracer tracer(2);
    tracer.setEnabled(true);
    for (int i = 0; i < 5; ++i)
        tracer.instant("e" + std::to_string(i), "test");
    EXPECT_EQ(tracer.dropped(), 3u);
    EXPECT_EQ(MetricsRegistry::instance()
                  .counter("trace.dropped_spans")
                  .value(),
              before + 3);
}

TEST(Span, ChromeTraceJsonEscapingRoundTrips)
{
    // Names and args with every character class the escaper handles:
    // quotes, backslashes, newlines/tabs, and raw control bytes. The
    // export must parse as valid JSON and decode back byte-identical.
    SpanEvent e;
    e.name = "layer \"q\\k\" \n\ttail \x01\x1f end";
    e.category = "cat\\\"x\"";
    e.startNs = 1000;
    e.durationNs = 2000;
    e.tid = 3;
    e.args = {{"msg", "a\\b \"c\"\r\n\x02 d", false},
              {"path\t\"p\"", "v", false}};

    const std::string json = chromeTraceJson({e});
    Result<JsonValue> parsed = parseJson(json);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    const JsonValue *events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->array().size(), 1u);
    const JsonValue &ev = events->array()[0];
    EXPECT_EQ(ev.stringOr("name", ""), e.name);
    EXPECT_EQ(ev.stringOr("cat", ""), e.category);
    const JsonValue *args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->stringOr("msg", ""), e.args[0].value);
    const JsonValue *odd_key = args->find("path\t\"p\"");
    ASSERT_NE(odd_key, nullptr);
    EXPECT_EQ(odd_key->string(), "v");
}

/** Arms the process flight recorder into a fresh temp subdirectory
 *  and restores global tracer/recorder state on exit (both are
 *  process-wide singletons shared across tests). */
struct FlightRecorderFixture
{
    std::string dir;

    explicit FlightRecorderFixture(const std::string &name)
    {
        dir = testing::TempDir() + "vitdyn_" + name;
        std::remove(dir.c_str());
        mkdir(dir.c_str(), 0755);
        Tracer::instance().clear();
    }

    ~FlightRecorderFixture()
    {
        FlightRecorder::instance().disarm();
        Tracer::instance().clear();
        Tracer::setThreadRequestId(0);
    }
};

TEST(FlightRecorder, DumpContainsTriggeringRequestChain)
{
    FlightRecorderFixture fixture("dump");
    FlightRecorder &recorder = FlightRecorder::instance();
    FlightRecorderOptions options;
    options.directory = fixture.dir;
    options.minIntervalMs = 0.0;
    recorder.arm(options);
    ASSERT_TRUE(Tracer::instance().enabled());

    // Two requests' spans interleave in the ring; the dump must keep
    // only the triggering request's chain.
    Tracer::setThreadRequestId(5);
    {
        ScopedSpan span(Tracer::instance(), "drt.execute", "engine");
        ScopedSpan inner(Tracer::instance(), "executor.run", "graph");
    }
    Tracer::setThreadRequestId(6);
    Tracer::instance().instant("other.request", "engine");
    Tracer::setThreadRequestId(0);

    recorder.trigger(FlightTrigger::DeadlineMiss, 5,
                     "deadline missed by 3.0 ms");
    EXPECT_EQ(recorder.triggers(), 1u);
    ASSERT_EQ(recorder.dumps(), 1u);
    const std::vector<std::string> paths = recorder.dumpPaths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_NE(paths[0].find("deadline_miss"), std::string::npos);

    Result<JsonValue> parsed = parseJsonFile(paths[0]);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    const JsonValue &dump = parsed.value();
    const JsonValue *header = dump.find("flightRecorder");
    ASSERT_NE(header, nullptr);
    EXPECT_EQ(header->stringOr("trigger", ""), "deadline_miss");
    EXPECT_DOUBLE_EQ(header->numberOr("request", 0.0), 5.0);
    EXPECT_EQ(header->stringOr("detail", ""),
              "deadline missed by 3.0 ms");

    const JsonValue *spans = dump.find("spans");
    ASSERT_NE(spans, nullptr);
    const JsonValue *events = spans->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array().size(), 2u);
    for (const JsonValue &ev : events->array()) {
        const JsonValue *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_DOUBLE_EQ(args->numberOr("req", 0.0), 5.0);
        EXPECT_NE(ev.stringOr("name", ""), "other.request");
    }
    // The embedded metrics snapshot parses too (it is the same
    // object MetricsSnapshot::toJson writes).
    const JsonValue *metrics = dump.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_NE(metrics->find("counters"), nullptr);
}

TEST(FlightRecorder, RequestlessTriggerKeepsContextWindow)
{
    FlightRecorderFixture fixture("panic");
    FlightRecorder &recorder = FlightRecorder::instance();
    FlightRecorderOptions options;
    options.directory = fixture.dir;
    options.minIntervalMs = 0.0;
    options.contextSpans = 2;
    recorder.arm(options);

    for (int i = 0; i < 5; ++i)
        Tracer::instance().instant("tick" + std::to_string(i),
                                   "test");
    recorder.trigger(FlightTrigger::ControllerPanic, 0,
                     "panic mode");
    ASSERT_EQ(recorder.dumps(), 1u);
    Result<JsonValue> parsed =
        parseJsonFile(recorder.dumpPaths()[0]);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().message();
    const JsonValue *events =
        parsed.value().find("spans")->find("traceEvents");
    ASSERT_NE(events, nullptr);
    // Only the trailing contextSpans window survives.
    ASSERT_EQ(events->array().size(), 2u);
    EXPECT_EQ(events->array()[0].stringOr("name", ""), "tick3");
    EXPECT_EQ(events->array()[1].stringOr("name", ""), "tick4");
}

TEST(FlightRecorder, DumpBudgetAndRateLimitSuppress)
{
    FlightRecorderFixture fixture("limits");
    FlightRecorder &recorder = FlightRecorder::instance();
    const uint64_t suppressed_before =
        MetricsRegistry::instance().counter("flight.suppressed")
            .value();
    FlightRecorderOptions options;
    options.directory = fixture.dir;
    options.maxDumps = 1;
    options.minIntervalMs = 60'000.0; // nothing inside the window
    recorder.arm(options);

    recorder.trigger(FlightTrigger::QuarantineReroute, 1, "first");
    recorder.trigger(FlightTrigger::QuarantineReroute, 2, "second");
    recorder.trigger(FlightTrigger::QuarantineReroute, 3, "third");
    EXPECT_EQ(recorder.triggers(), 3u);
    EXPECT_EQ(recorder.dumps(), 1u);
    EXPECT_EQ(recorder.dumpPaths().size(), 1u);
    EXPECT_EQ(MetricsRegistry::instance()
                  .counter("flight.suppressed")
                  .value(),
              suppressed_before + 2);

    // Per-trigger disables drop the event before rate limiting.
    FlightRecorderOptions off = options;
    off.onQuarantineReroute = false;
    recorder.arm(off); // re-arm resets the budget
    recorder.trigger(FlightTrigger::QuarantineReroute, 4, "masked");
    EXPECT_EQ(recorder.dumps(), 0u);
}

TEST(FlightRecorder, DisarmRestoresTracerEnableState)
{
    FlightRecorderFixture fixture("restore");
    Tracer &tracer = Tracer::instance();
    const bool was_enabled = tracer.enabled();
    tracer.setEnabled(false);

    FlightRecorderOptions options;
    options.directory = fixture.dir;
    FlightRecorder::instance().arm(options);
    EXPECT_TRUE(tracer.enabled()); // arm turned capture on
    FlightRecorder::instance().disarm();
    EXPECT_FALSE(tracer.enabled()); // ...and disarm turned it back off
    // A disarmed trigger is a no-op probe.
    FlightRecorder::instance().trigger(FlightTrigger::DeadlineMiss, 1,
                                       "ignored");
    EXPECT_EQ(FlightRecorder::instance().dumpPaths().size(), 0u);

    tracer.setEnabled(was_enabled);
}
#endif // VITDYN_TRACING_DISABLED

} // namespace
} // namespace vitdyn
