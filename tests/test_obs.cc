/** @file Tests of the observability layer: metrics registry,
 * histogram percentiles, scoped spans, and the exporters. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace vitdyn
{
namespace
{

TEST(Histogram, QuantilesExactAtBucketBoundaries)
{
    // 1..100 with bounds at the quantile targets: the Prometheus
    // interpolation is exact when the rank lands on a bucket edge.
    Histogram h({50.0, 95.0, 99.0, 100.0});
    for (int v = 1; v <= 100; ++v)
        h.observe(static_cast<double>(v));

    const HistogramSnapshot snap = h.snapshot("h");
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.00), 100.0);
}

TEST(Histogram, QuantileInterpolatesInsideBucket)
{
    // One bucket spanning (min, 10]: quantiles interpolate linearly
    // between the observed min and the bucket bound.
    Histogram h({10.0});
    h.observe(2.0);
    h.observe(4.0);
    h.observe(6.0);
    h.observe(8.0);

    const HistogramSnapshot snap = h.snapshot("h");
    // target = 0.5 * 4 = 2 of 4 in-bucket -> halfway from min to 10.
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0 + 0.5 * (10.0 - 2.0));
}

TEST(Histogram, EmptySnapshotIsAllZero)
{
    Histogram h({1.0, 2.0});
    const HistogramSnapshot snap = h.snapshot("empty");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST(Histogram, OverflowBucketEndsAtObservedMax)
{
    Histogram h({1.0});
    h.observe(5.0);
    h.observe(9.0); // both above every bound -> overflow bucket
    const HistogramSnapshot snap = h.snapshot("h");
    EXPECT_EQ(snap.buckets.back(), 2u);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 9.0);
}

TEST(Histogram, ResetZeroesInPlace)
{
    Histogram h({1.0});
    h.observe(0.5);
    h.reset();
    const HistogramSnapshot snap = h.snapshot("h");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    h.observe(3.0);
    EXPECT_DOUBLE_EQ(h.snapshot("h").min, 3.0);
}

TEST(Metrics, ConcurrentCounterIncrementsAllLand)
{
    MetricsRegistry registry;
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry] {
            Counter &c = registry.counter("hits");
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(registry.counter("hits").value(),
              static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, ConcurrentHistogramObservesAllLand)
{
    MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kObs = 5000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry, t] {
            Histogram &h = registry.histogram("lat", {1.0, 2.0});
            for (int i = 0; i < kObs; ++i)
                h.observe(t == 0 ? 0.5 : 1.5);
        });
    for (std::thread &t : threads)
        t.join();

    const HistogramSnapshot snap =
        registry.histogram("lat").snapshot("lat");
    EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kObs);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 1.5);
    EXPECT_EQ(snap.buckets[0], static_cast<uint64_t>(kObs));
    EXPECT_EQ(snap.buckets[1], static_cast<uint64_t>(3 * kObs));
}

TEST(Metrics, RegistryReferencesSurviveReset)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("events");
    c.add(41);
    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(1);
    EXPECT_EQ(registry.snapshot().counterValue("events"), 1u);
}

TEST(Metrics, SnapshotCsvIsByteStable)
{
    MetricsRegistry registry;
    registry.counter("drt.frames").add(3);
    registry.gauge("controller.bias").set(1.25);
    Histogram &h = registry.histogram("lat", {1.0, 2.0});
    h.observe(1.0);
    h.observe(2.0);

    EXPECT_EQ(registry.snapshot().toCsv(),
              "kind,name,value,count,sum,min,max,p50,p95,p99\n"
              "counter,drt.frames,3,,,,,,,\n"
              "gauge,controller.bias,1.25,,,,,,,\n"
              "histogram,lat,,2,3,1,2,1,1.9,1.98\n");
}

#ifdef VITDYN_TRACING_DISABLED
TEST(Span, CompiledOutSpansAreInert)
{
    Tracer tracer;
    tracer.setEnabled(true); // warns; stays off
    EXPECT_FALSE(tracer.enabled());
    ScopedSpan span(tracer, "x", "test");
    EXPECT_FALSE(span.active());
}
#else

/** A tracer on a deterministic clock advancing 1 us per read. */
struct FixedClockTracer
{
    Tracer tracer;
    uint64_t nowNs = 0;

    FixedClockTracer()
    {
        tracer.setClock([this] {
            const uint64_t t = nowNs;
            nowNs += 1000;
            return t;
        });
        tracer.setEnabled(true);
    }
};

TEST(Span, DisabledTracerRecordsNothing)
{
    Tracer tracer;
    {
        ScopedSpan span(tracer, "x", "test");
        EXPECT_FALSE(span.active());
        span.arg("k", "v"); // no-op, must not crash
    }
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Span, NestingDepthAndOrdering)
{
    FixedClockTracer fixture;
    Tracer &tracer = fixture.tracer;
    {
        ScopedSpan outer(tracer, "frame", "engine");
        {
            ScopedSpan inner(tracer, "layer", "executor");
        }
        tracer.instant("quarantine", "engine");
    }

    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    // Inner closes first, the instant lands next, outer closes last.
    EXPECT_EQ(events[0].name, "layer");
    EXPECT_EQ(events[0].depth, 1);
    EXPECT_EQ(events[1].name, "quarantine");
    EXPECT_TRUE(events[1].instant);
    EXPECT_EQ(events[2].name, "frame");
    EXPECT_EQ(events[2].depth, 0);
    // The outer span starts before and ends after the inner one.
    EXPECT_LT(events[2].startNs, events[0].startNs);
    EXPECT_GT(events[2].startNs + events[2].durationNs,
              events[0].startNs + events[0].durationNs);
}

TEST(Span, RingOverflowDropsOldest)
{
    Tracer tracer(4);
    tracer.setEnabled(true);
    for (int i = 0; i < 6; ++i)
        tracer.instant("e" + std::to_string(i), "test");

    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    EXPECT_EQ(events.front().name, "e2");
    EXPECT_EQ(events.back().name, "e5");
}

TEST(Span, ChromeTraceJsonIsByteStable)
{
    // Hand-built events: no thread ids or clocks involved, so the
    // exporter output must match byte for byte.
    SpanEvent outer;
    outer.name = "drt.infer";
    outer.category = "engine";
    outer.startNs = 1000;
    outer.durationNs = 4500;
    outer.tid = 1;
    outer.seq = 1;
    outer.args = {{"budget", "12.5", true}, {"path", "full", false}};

    SpanEvent inner;
    inner.name = "layer \"a\"";
    inner.category = "executor";
    inner.startNs = 2000;
    inner.durationNs = 1000;
    inner.tid = 1;
    inner.seq = 0; // recorded first (closed first), starts later
    inner.depth = 1;

    EXPECT_EQ(
        chromeTraceJson({inner, outer}),
        "{\"traceEvents\":[\n"
        "{\"name\":\"drt.infer\",\"cat\":\"engine\",\"ph\":\"X\","
        "\"ts\":1.000,\"dur\":4.500,\"pid\":1,\"tid\":1,"
        "\"args\":{\"budget\":12.5,\"path\":\"full\"}},\n"
        "{\"name\":\"layer \\\"a\\\"\",\"cat\":\"executor\","
        "\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000,\"pid\":1,"
        "\"tid\":1}\n"
        "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(Span, ScopedSpanArgsRenderTyped)
{
    FixedClockTracer fixture;
    Tracer &tracer = fixture.tracer;
    {
        ScopedSpan span(tracer, "s", "test");
        span.arg("str", "text");
        span.arg("int", static_cast<int64_t>(-3));
        span.arg("flag", true);
        span.arg("ratio", 0.5);
    }
    const std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 1u);
    ASSERT_EQ(events[0].args.size(), 4u);
    EXPECT_FALSE(events[0].args[0].numeric);
    EXPECT_TRUE(events[0].args[1].numeric);
    EXPECT_EQ(events[0].args[1].value, "-3");
    EXPECT_EQ(events[0].args[2].value, "true");
    EXPECT_EQ(events[0].args[3].value, "0.5");
}
#endif // VITDYN_TRACING_DISABLED

} // namespace
} // namespace vitdyn
