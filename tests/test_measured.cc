/** @file Tests of the measured-resilience module (executed pruning
 * deviation with shared weights, FP32 and INT8). */

#include <gtest/gtest.h>

#include "profile/gpu_model.hh"
#include "resilience/measured.hh"

namespace vitdyn
{
namespace
{

SegformerConfig
smallConfig()
{
    SegformerConfig cfg;
    cfg.name = "segformer_measured_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

GraphCostFn
flopsCost()
{
    return [](const Graph &g) {
        return static_cast<double>(g.totalFlops());
    };
}

TEST(Measured, FullPathIsExact)
{
    std::vector<PruneConfig> candidates = {
        {"full", {2, 2, 2, 2}, 0, 0, 0, 0, 0}};
    MeasureOptions options;
    options.scenes = 2;
    auto points = measureSegformerResilience(smallConfig(), candidates,
                                             flopsCost(), options);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_DOUBLE_EQ(points[0].normalizedUtil, 1.0);
    EXPECT_DOUBLE_EQ(points[0].agreementMiou, 1.0);
    EXPECT_DOUBLE_EQ(points[0].logitRelError, 0.0);
}

TEST(Measured, DeviationGrowsWithChannelPruning)
{
    std::vector<PruneConfig> candidates = {
        {"c112", {2, 2, 2, 2}, 112, 0, 0, 0, 0},
        {"c96", {2, 2, 2, 2}, 96, 0, 0, 0, 0},
        {"c64", {2, 2, 2, 2}, 64, 0, 0, 0, 0},
    };
    MeasureOptions options;
    options.scenes = 2;
    auto points = measureSegformerResilience(smallConfig(), candidates,
                                             flopsCost(), options);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_LT(points[0].logitRelError, points[1].logitRelError);
    EXPECT_LT(points[1].logitRelError, points[2].logitRelError);
    // And utilization shrinks along the way.
    EXPECT_GT(points[0].normalizedUtil, points[2].normalizedUtil);
}

TEST(Measured, Int8TracksFp32)
{
    std::vector<PruneConfig> candidates = {
        {"c96", {2, 2, 2, 2}, 96, 0, 0, 0, 0}};
    MeasureOptions fp;
    fp.scenes = 2;
    MeasureOptions q8 = fp;
    q8.int8 = true;
    auto fp_points = measureSegformerResilience(
        smallConfig(), candidates, flopsCost(), fp);
    auto q8_points = measureSegformerResilience(
        smallConfig(), candidates, flopsCost(), q8);
    // INT8 execution reproduces the FP32 deviation within a modest
    // extra quantization error.
    EXPECT_NEAR(q8_points[0].logitRelError, fp_points[0].logitRelError,
                0.05);
}

TEST(Measured, DeterministicGivenSeeds)
{
    std::vector<PruneConfig> candidates = {
        {"c96", {2, 2, 2, 2}, 96, 0, 0, 0, 0}};
    MeasureOptions options;
    options.scenes = 2;
    auto a = measureSegformerResilience(smallConfig(), candidates,
                                        flopsCost(), options);
    auto b = measureSegformerResilience(smallConfig(), candidates,
                                        flopsCost(), options);
    EXPECT_DOUBLE_EQ(a[0].agreementMiou, b[0].agreementMiou);
    EXPECT_DOUBLE_EQ(a[0].logitRelError, b[0].logitRelError);
}

} // namespace
} // namespace vitdyn
