/** @file Tests of the Graph DAG: construction, queries, normalize. */

#include <gtest/gtest.h>

#include "graph/graph.hh"
#include "obs/metrics.hh"

namespace vitdyn
{
namespace
{

Layer
relu(const std::string &name, int input)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::ReLU;
    l.inputs = {input};
    return l;
}

TEST(Graph, InputShapeStored)
{
    Graph g("m");
    int in = g.addInput("x", {1, 3, 8, 8});
    EXPECT_EQ(g.layer(in).outShape, (Shape{1, 3, 8, 8}));
    EXPECT_EQ(g.inputs().size(), 1u);
}

TEST(Graph, ShapeInferenceAtInsert)
{
    Graph g("m");
    int in = g.addInput("x", {1, 4, 8, 8});
    Layer conv;
    conv.name = "c";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 6;
    conv.inputs = {in};
    int id = g.addLayer(std::move(conv));
    EXPECT_EQ(g.layer(id).outShape, (Shape{1, 6, 8, 8}));
}

TEST(Graph, ForwardReferenceFatal)
{
    Graph g("m");
    g.addInput("x", {1, 2});
    Layer l = relu("r", 5);
    EXPECT_DEATH(g.addLayer(std::move(l)), "references id");
}

TEST(Graph, FindLayerByName)
{
    Graph g("m");
    int in = g.addInput("x", {4});
    g.addLayer(relu("a", in));
    int b = g.addLayer(relu("b", 1));
    EXPECT_EQ(g.findLayer("b"), b);
    EXPECT_EQ(g.findLayer("zzz"), -1);
}

TEST(Graph, ConsumersOf)
{
    Graph g("m");
    int in = g.addInput("x", {4});
    int a = g.addLayer(relu("a", in));
    int b = g.addLayer(relu("b", a));
    int c = g.addLayer(relu("c", a));
    auto consumers = g.consumersOf(a);
    EXPECT_EQ(consumers, (std::vector<int>{b, c}));
    EXPECT_TRUE(g.consumersOf(c).empty());
}

TEST(Graph, StageQuery)
{
    Graph g("m");
    int in = g.addInput("x", {4});
    Layer a = relu("a", in);
    a.stage = "encoder.stage0";
    Layer b = relu("b", in);
    b.stage = "encoder.stage1";
    Layer c = relu("c", in);
    c.stage = "decoder";
    g.addLayer(std::move(a));
    g.addLayer(std::move(b));
    g.addLayer(std::move(c));
    EXPECT_EQ(g.layersInStage("encoder").size(), 2u);
    EXPECT_EQ(g.layersInStage("encoder.stage1").size(), 1u);
    EXPECT_EQ(g.layersInStage("decoder").size(), 1u);
}

TEST(Graph, TotalsAccumulate)
{
    Graph g("m");
    int in = g.addInput("x", {1, 4, 8, 8});
    Layer conv;
    conv.name = "c";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 4;
    conv.attrs.kernelH = conv.attrs.kernelW = 3;
    conv.attrs.padH = conv.attrs.padW = 1;
    conv.inputs = {in};
    g.addLayer(std::move(conv));
    EXPECT_EQ(g.totalMacs(), 64LL * 4 * 4 * 9);
    EXPECT_EQ(g.totalFlops(), g.totalMacs());
    EXPECT_EQ(g.totalParams(), 4 * 4 * 9 + 4);
}

TEST(Graph, NormalizeDropsDeadLayers)
{
    Graph g("m");
    int in = g.addInput("x", {4});
    int a = g.addLayer(relu("a", in));
    g.addLayer(relu("dead", in));
    int out = g.addLayer(relu("out", a));
    g.markOutput(out);
    EXPECT_EQ(g.numLayers(), 4u);
    g.normalize();
    EXPECT_EQ(g.numLayers(), 3u);
    EXPECT_EQ(g.findLayer("dead"), -1);
    EXPECT_NE(g.findLayer("out"), -1);
}

TEST(Graph, NormalizeRenumbersDensely)
{
    Graph g("m");
    int in = g.addInput("x", {4});
    g.addLayer(relu("dead1", in));
    int a = g.addLayer(relu("a", in));
    g.addLayer(relu("dead2", a));
    int out = g.addLayer(relu("out", a));
    g.markOutput(out);
    g.normalize();
    for (size_t i = 0; i < g.numLayers(); ++i) {
        EXPECT_EQ(g.layer(static_cast<int>(i)).id, static_cast<int>(i));
        for (int in_id : g.layer(static_cast<int>(i)).inputs)
            EXPECT_LT(in_id, static_cast<int>(i));
    }
    EXPECT_EQ(g.outputs().size(), 1u);
    EXPECT_EQ(g.layer(g.outputs()[0]).name, "out");
}

TEST(Graph, AppendUnorderedThenNormalize)
{
    Graph g("m");
    int in = g.addInput("x", {4});
    int a = g.addLayer(relu("a", in));
    int out = g.addLayer(relu("out", a));
    g.markOutput(out);

    // Insert a narrow between in and a, logically.
    Layer narrow;
    narrow.name = "n";
    narrow.kind = LayerKind::Narrow;
    narrow.attrs.outChannels = 2;
    narrow.inputs = {in};
    int nid = g.appendUnordered(std::move(narrow));
    g.layer(a).inputs = {nid};

    g.normalize();
    // The narrow precedes 'a' in the normalized order.
    EXPECT_LT(g.layer(g.findLayer("a")).inputs[0], g.findLayer("a"));
    EXPECT_EQ(g.layer(g.findLayer("a")).outShape, (Shape{2}));
    EXPECT_EQ(g.layer(g.findLayer("out")).outShape, (Shape{2}));
}

TEST(Graph, RecomputeShapesPropagates)
{
    Graph g("m");
    int in = g.addInput("x", {1, 8, 4, 4});
    Layer conv;
    conv.name = "c";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 8;
    conv.attrs.outChannels = 8;
    conv.inputs = {in};
    int cid = g.addLayer(std::move(conv));
    int rid = g.addLayer(relu("r", cid));

    g.layer(cid).attrs.outChannels = 5;
    g.recomputeShapes();
    EXPECT_EQ(g.layer(rid).outShape, (Shape{1, 5, 4, 4}));
}

TEST(Graph, TryNormalizeIsTransactionalOnCycle)
{
    Graph g("cyclic");
    int in = g.addInput("x", {4});
    int a = g.addLayer(relu("a", in));
    int b = g.addLayer(relu("b", a));
    g.markOutput(b);

    // Corrupt the DAG into a 2-cycle via the mutable accessor, then
    // demand that a failed normalize leaves the graph byte-identical.
    g.layer(a).inputs = {b};
    const std::string snapshot = g.toString();

    Status st = g.tryNormalize();
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("cycle detected"), std::string::npos);
    EXPECT_NE(st.message().find("cyclic"), std::string::npos);
    EXPECT_EQ(g.toString(), snapshot);
    // Still usable: undo the corruption and normalize succeeds.
    g.layer(a).inputs = {in};
    EXPECT_TRUE(g.tryNormalize().isOk());
}

TEST(Graph, TryNormalizeIsTransactionalOnShapeError)
{
    Graph g("m");
    int in = g.addInput("x", {1, 4, 8, 8});
    Layer conv;
    conv.name = "c";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 6;
    conv.inputs = {in};
    int cid = g.addLayer(std::move(conv));
    int rid = g.addLayer(relu("r", cid));
    g.markOutput(rid);

    g.layer(cid).attrs.inChannels = 9; // no longer matches the input
    const std::string snapshot = g.toString();

    Status st = g.tryNormalize();
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("'c'"), std::string::npos);
    EXPECT_EQ(g.toString(), snapshot);
}

TEST(Graph, TryRecomputeShapesIsTransactional)
{
    Graph g("m");
    int in = g.addInput("x", {1, 4, 8, 8});
    Layer conv;
    conv.name = "c";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 4;
    conv.attrs.outChannels = 6;
    conv.inputs = {in};
    int cid = g.addLayer(std::move(conv));
    int rid = g.addLayer(relu("r", cid));

    g.layer(cid).attrs.inChannels = 9;
    Status st = g.tryRecomputeShapes();
    ASSERT_FALSE(st.isOk());
    // The error names the offending layer and every stored shape is
    // untouched — no half-propagated prefix.
    EXPECT_NE(st.message().find("'c'"), std::string::npos);
    EXPECT_EQ(g.layer(cid).outShape, (Shape{1, 6, 8, 8}));
    EXPECT_EQ(g.layer(rid).outShape, (Shape{1, 6, 8, 8}));
}

TEST(Graph, NormalizeCountsDroppedLayersAndReportsMapping)
{
    Counter &dropped =
        MetricsRegistry::instance().counter("graph.dropped_layers");
    const uint64_t before = dropped.value();

    Graph g("m");
    int in = g.addInput("x", {4});
    int a = g.addLayer(relu("a", in));
    int junk = g.addLayer(relu("junk", in));
    g.markOutput(a);

    std::vector<int> old_to_new;
    g.normalize(&old_to_new);
    EXPECT_EQ(dropped.value(), before + 1);
    ASSERT_EQ(old_to_new.size(), 3u);
    EXPECT_EQ(old_to_new[junk], -1);
    EXPECT_GE(old_to_new[in], 0);
    EXPECT_GE(old_to_new[a], 0);
    EXPECT_EQ(g.findLayer("junk"), -1);
}

TEST(Graph, ToStringMentionsLayers)
{
    Graph g("demo_model");
    int in = g.addInput("x", {4});
    g.addLayer(relu("my_relu", in));
    const std::string s = g.toString();
    EXPECT_NE(s.find("demo_model"), std::string::npos);
    EXPECT_NE(s.find("my_relu"), std::string::npos);
}

} // namespace
} // namespace vitdyn
