/** @file Tests of the early-exit contrast model and the SR-scaling
 * pruning dimension (the paper's motivational arguments). */

#include <gtest/gtest.h>

#include "engine/early_exit.hh"
#include "profile/gpu_model.hh"
#include "resilience/sweep.hh"

namespace vitdyn
{
namespace
{

AccuracyResourceLut
tableIILut(GpuLatencyModel &gpu)
{
    AccuracyModel acc(PrunedModelKind::SegformerB2Ade);
    SegformerConfig base = segformerB2Config();
    auto points = sweepSegformer(
        base, segformerAdePruneCatalog(), acc,
        [&](const Graph &g) { return gpu.graphTimeMs(g); });
    return AccuracyResourceLut(points, "ms");
}

TEST(EarlyExitModel, CostMonotoneInExit)
{
    EarlyExitModel m;
    m.fullCost = 100.0;
    double prev = 0.0;
    for (int e = 0; e < m.numExits; ++e) {
        EXPECT_GT(m.costAtExit(e), prev);
        prev = m.costAtExit(e);
    }
    // The last exit costs more than the plain full model: the added
    // internal classifiers are overhead.
    EXPECT_GT(m.costAtExit(m.numExits - 1), m.fullCost);
}

TEST(EarlyExitModel, AccuracyMonotoneInExit)
{
    EarlyExitModel m;
    double prev = 0.0;
    for (int e = 0; e < m.numExits; ++e) {
        EXPECT_GE(m.accuracyAtExit(e), prev);
        prev = m.accuracyAtExit(e);
    }
    EXPECT_DOUBLE_EQ(m.accuracyAtExit(m.numExits - 1),
                     m.fullAccuracy);
    EXPECT_DOUBLE_EQ(m.accuracyAtExit(0),
                     m.fullAccuracy * m.firstExitAccuracy);
}

TEST(EarlyExitModel, ExitFollowsDifficulty)
{
    EarlyExitModel m;
    EXPECT_EQ(m.exitForDifficulty(0.0), 0);
    EXPECT_EQ(m.exitForDifficulty(1.0), m.numExits - 1);
    EXPECT_LE(m.exitForDifficulty(0.3), m.exitForDifficulty(0.8));
}

TEST(DifficultyTrace, BoundedAndDeterministic)
{
    auto a = makeDifficultyTrace(200, 0.5, 0.3, 7);
    auto b = makeDifficultyTrace(200, 0.5, 0.3, 7);
    EXPECT_EQ(a, b);
    for (double d : a) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST(Contrast, DrtNeverMissesFeasibleBudgets)
{
    GpuLatencyModel gpu;
    AccuracyResourceLut lut = tableIILut(gpu);
    EarlyExitModel ee;
    ee.fullCost = lut.best().resourceCost;

    auto difficulty = makeDifficultyTrace(300, 0.7, 0.2, 1);
    BudgetTrace budgets = makeSinusoidalTrace(
        300, lut.cheapest().resourceCost * 1.01,
        lut.best().resourceCost * 1.2, 40.0, 0.0, 2);

    ContrastResult r = contrastPolicies(ee, lut, difficulty, budgets);
    EXPECT_EQ(r.drt.deadlineMisses, 0);
    EXPECT_DOUBLE_EQ(r.drt.worstOverrun, 0.0);
    // Hard inputs under tight budgets: early exit misses.
    EXPECT_GT(r.earlyExit.deadlineMisses, 0);
    EXPECT_GT(r.earlyExit.worstOverrun, 0.0);
}

TEST(Contrast, EarlyExitWinsOnEasyInputsWithAmpleBudget)
{
    // The flip side the paper acknowledges: when inputs are easy and
    // resources ample, input-adaptive methods spend less for nearly
    // the same accuracy.
    GpuLatencyModel gpu;
    AccuracyResourceLut lut = tableIILut(gpu);
    EarlyExitModel ee;
    ee.fullCost = lut.best().resourceCost;

    auto difficulty = makeDifficultyTrace(300, 0.2, 0.1, 3);
    BudgetTrace budgets = makeStepTrace(
        300, lut.best().resourceCost * 2.0,
        lut.best().resourceCost * 2.0, 0);
    ContrastResult r = contrastPolicies(ee, lut, difficulty, budgets);
    EXPECT_EQ(r.earlyExit.deadlineMisses, 0);
    EXPECT_LT(r.earlyExit.meanCost, r.drt.meanCost);
}

TEST(Contrast, StreamLengthMismatchPanics)
{
    GpuLatencyModel gpu;
    AccuracyResourceLut lut = tableIILut(gpu);
    EarlyExitModel ee;
    BudgetTrace budgets = makeStepTrace(5, 1.0, 1.0, 0);
    EXPECT_DEATH(contrastPolicies(ee, lut, {0.5, 0.5}, budgets),
                 "length mismatch");
}

TEST(SrScaling, NegligibleSavingsSubstantialDrop)
{
    // Section III-A: increasing the spatial-reduction ratio saves
    // little time but costs a lot of accuracy.
    GpuLatencyModel gpu;
    AccuracyModel acc(PrunedModelKind::SegformerB2Ade);
    SegformerConfig base = segformerB2Config();

    PruneConfig sr2;
    sr2.label = "sr2";
    sr2.depths = base.depths;
    sr2.srScale = 2;
    auto points = sweepSegformer(
        base, {sr2}, acc,
        [&](const Graph &g) { return gpu.graphTimeMs(g); });
    ASSERT_EQ(points.size(), 1u);
    const double saved = 1.0 - points[0].normalizedUtil;
    const double drop = 1.0 - points[0].normalizedMiou;
    EXPECT_GT(drop, saved);
    EXPECT_GT(drop, 0.08);
}

TEST(SrScaling, GraphShrinksAttentionOnly)
{
    SegformerConfig base = segformerB2Config();
    PruneConfig sr2;
    sr2.label = "sr2";
    sr2.depths = base.depths;
    sr2.srScale = 2;
    Graph full = buildSegformer(base);
    Graph scaled = applySegformerPrune(base, sr2);
    EXPECT_LT(scaled.totalFlops(), full.totalFlops());
    // The decoder is untouched.
    const int fid = scaled.findLayer("Conv2DFuse");
    ASSERT_GE(fid, 0);
    EXPECT_EQ(scaled.layer(fid).attrs.inChannels, 3072);
    // Stage-3 attention (sr = 1) is untouched too: same Lkv.
    const int s3 =
        scaled.findLayer("encoder.stage3.block0.attn.context");
    const int s3f =
        full.findLayer("encoder.stage3.block0.attn.context");
    ASSERT_GE(s3, 0);
    EXPECT_EQ(scaled.layer(s3).attrs.inFeatures,
              full.layer(s3f).attrs.inFeatures);
}

} // namespace
} // namespace vitdyn
