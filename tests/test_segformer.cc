/** @file Tests of the SegFormer builder against the paper's published
 * characterization (Table I, Fig 3) and structural invariants. */

#include <gtest/gtest.h>

#include "graph/executor.hh"
#include "models/segformer.hh"
#include "resilience/config.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Segformer, B2MatchesPublishedFlops)
{
    Graph g = buildSegformer(segformerB2Config());
    // Table I: 62.6 GFLOPs at 512x512 (MAC counting). Allow 5%.
    EXPECT_NEAR(g.totalFlops() / 1e9, 62.6, 62.6 * 0.05);
}

TEST(Segformer, B2MatchesPublishedParams)
{
    Graph g = buildSegformer(segformerB2Config());
    // Table I: 27.6 M parameters. Allow 3%.
    EXPECT_NEAR(g.totalParams() / 1e6, 27.6, 27.6 * 0.03);
}

TEST(Segformer, CityscapesFlops)
{
    Graph g = buildSegformer(segformerB2CityscapesConfig());
    // Table I: 705 GFLOPs at 1024x2048. Allow 5%.
    EXPECT_NEAR(g.totalFlops() / 1e9, 705.0, 705.0 * 0.05);
}

TEST(Segformer, FuseConvDominatesFlops)
{
    Graph g = buildSegformer(segformerB2Config());
    const Layer &fuse = g.layer(g.findLayer("Conv2DFuse"));
    // Fig 3: Conv2DFuse alone is 62% of total FLOPs.
    const double share =
        static_cast<double>(fuse.flops()) / g.totalFlops();
    EXPECT_NEAR(share, 0.62, 0.03);
    EXPECT_EQ(fuse.attrs.inChannels, 3072);
    EXPECT_EQ(fuse.attrs.outChannels, 768);
    EXPECT_EQ(fuse.attrs.kernelH, 1);
}

TEST(Segformer, PredAndDecodeLinearShares)
{
    Graph g = buildSegformer(segformerB2Config());
    const double total = static_cast<double>(g.totalFlops());
    // Fig 3: Conv2DPred 3%, DecodeLinear0 1.3%.
    EXPECT_NEAR(g.layer(g.findLayer("Conv2DPred")).flops() / total,
                0.03, 0.01);
    EXPECT_NEAR(g.layer(g.findLayer("DecodeLinear0")).flops() / total,
                0.013, 0.005);
}

TEST(Segformer, ConvShareMatchesPaper)
{
    Graph g = buildSegformer(segformerB2Config());
    int64_t conv = 0;
    for (const Layer &l : g.layers())
        if (l.category() == OpCategory::Conv)
            conv += l.flops();
    // Section II-B: 68% of FLOPs are in convolution layers.
    EXPECT_NEAR(static_cast<double>(conv) / g.totalFlops(), 0.68, 0.03);
}

TEST(Segformer, VariantOrdering)
{
    Graph b0 = buildSegformer(segformerB0Config());
    Graph b1 = buildSegformer(segformerB1Config());
    Graph b2 = buildSegformer(segformerB2Config());
    EXPECT_LT(b0.totalFlops(), b1.totalFlops());
    EXPECT_LT(b1.totalFlops(), b2.totalFlops());
    EXPECT_LT(b0.totalParams(), b1.totalParams());
    EXPECT_LT(b1.totalParams(), b2.totalParams());
    // Published sizes: B0 ~3.8M, B1 ~13.7M params.
    EXPECT_NEAR(b0.totalParams() / 1e6, 3.8, 0.5);
    EXPECT_NEAR(b1.totalParams() / 1e6, 13.7, 1.0);
}

TEST(Segformer, StageTagsPresent)
{
    Graph g = buildSegformer(segformerB2Config());
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(g.layersInStage("encoder.stage" + std::to_string(i))
                         .empty());
    EXPECT_FALSE(g.layersInStage("decoder").empty());
}

TEST(Segformer, DepthsControlBlockCount)
{
    SegformerConfig cfg = segformerB2Config();
    Graph full = buildSegformer(cfg);
    cfg.depths = {1, 1, 1, 1};
    Graph slim = buildSegformer(cfg);
    EXPECT_LT(slim.numLayers(), full.numLayers());
    EXPECT_LT(slim.totalFlops(), full.totalFlops());
    // Output resolution unchanged.
    EXPECT_EQ(slim.layer(slim.outputs()[0]).outShape,
              full.layer(full.outputs()[0]).outShape);
}

TEST(Segformer, OutputIsFullResolutionLogits)
{
    SegformerConfig cfg = segformerB2Config();
    cfg.imageH = cfg.imageW = 64; // small for the test
    Graph g = buildSegformer(cfg);
    const Shape &out = g.layer(g.outputs()[0]).outShape;
    EXPECT_EQ(out, (Shape{1, cfg.numClasses, 64, 64}));
}

TEST(Segformer, SmallModelExecutes)
{
    SegformerConfig cfg = segformerB0Config();
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 8;
    Graph g = buildSegformer(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 8, 64, 64}));
    EXPECT_GT(out.maxAbs(), 0.0f);
}

TEST(Segformer, PruneCatalogConfigsBuild)
{
    // Every Table II configuration produces a consistent graph with
    // monotonically matching fuse width.
    SegformerConfig base = segformerB2Config();
    for (const PruneConfig &config : segformerAdePruneCatalog()) {
        Graph g = applySegformerPrune(base, config);
        const Layer &fuse = g.layer(g.findLayer("Conv2DFuse"));
        EXPECT_EQ(fuse.attrs.inChannels, config.fuseInChannels)
            << config.label;
        EXPECT_LE(g.totalFlops(),
                  buildSegformer(base).totalFlops())
            << config.label;
    }
}

TEST(Segformer, PruneReducesFlopsMonotonically)
{
    SegformerConfig base = segformerB2Config();
    const Graph full = buildSegformer(base);
    int64_t prev = full.totalFlops() + 1;
    for (const PruneConfig &config : segformerAdePruneCatalog()) {
        Graph g = applySegformerPrune(base, config);
        // Catalog is ordered from full model (A) to smallest (G).
        EXPECT_LT(g.totalFlops(), prev) << config.label;
        prev = g.totalFlops();
    }
}

TEST(Segformer, BatchScalesFlopsLinearly)
{
    SegformerConfig cfg = segformerB2Config();
    Graph b1 = buildSegformer(cfg);
    cfg.batch = 4;
    Graph b4 = buildSegformer(cfg);
    EXPECT_NEAR(static_cast<double>(b4.totalFlops()) / b1.totalFlops(),
                4.0, 0.01);
}

TEST(Segformer, RejectsUnalignedImage)
{
    SegformerConfig cfg = segformerB2Config();
    cfg.imageH = 100;
    EXPECT_DEATH(buildSegformer(cfg), "divisible by 32");
}

} // namespace
} // namespace vitdyn
