/** @file Tests of the process-wide thread pool and parallelFor. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "util/threadpool.hh"

namespace vitdyn
{
namespace
{

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int64_t n = 10'000;
    std::vector<int> hits(n, 0);
    pool.parallelFor(0, n, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, MatchesInlineResult)
{
    ThreadPool pool(8);
    constexpr int64_t n = 4096;
    std::vector<double> seq(n), par(n);
    auto body = [](std::vector<double> &out) {
        return [&out](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                out[i] = static_cast<double>(i) * 1.5 + 2.0;
        };
    };
    ThreadPool inline_pool(1);
    inline_pool.parallelFor(0, n, 1, body(seq));
    pool.parallelFor(0, n, 1, body(par));
    EXPECT_EQ(seq, par);
}

TEST(ParallelFor, EmptyAndBackwardRangesAreNoOps)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainCutoffRunsInline)
{
    ThreadPool pool(4);
    // Range below one grain: must run as a single inline shard on the
    // calling thread.
    const std::thread::id self = std::this_thread::get_id();
    int calls = 0;
    pool.parallelFor(0, 64, 128, [&](int64_t b, int64_t e) {
        ++calls;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 64);
        EXPECT_EQ(std::this_thread::get_id(), self);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SingleThreadPoolDegeneratesToInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    const std::thread::id self = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    pool.parallelFor(0, 100'000, 1, [&](int64_t b, int64_t e) {
        ids.insert(std::this_thread::get_id());
        // Inline execution arrives as one undivided range.
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 100'000);
    });
    EXPECT_EQ(ids, std::set<std::thread::id>{self});
}

TEST(ParallelFor, UsesWorkerThreads)
{
    ThreadPool pool(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    pool.parallelFor(0, 4, 1, [&](int64_t, int64_t) {
        // Enough per-shard work that all shards overlap.
        volatile double sink = 0;
        for (int i = 0; i < 2'000'000; ++i)
            sink = sink + i;
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GE(ids.size(), 2u);
}

TEST(ParallelFor, NestedCallsRunInlineAndStayCorrect)
{
    ThreadPool pool(4);
    constexpr int64_t outer = 16;
    constexpr int64_t inner = 512;
    std::vector<int> hits(outer * inner, 0);
    pool.parallelFor(0, outer, 1, [&](int64_t ob, int64_t oe) {
        for (int64_t o = ob; o < oe; ++o) {
            const bool from_worker = ThreadPool::onWorkerThread();
            pool.parallelFor(0, inner, 1, [&](int64_t ib, int64_t ie) {
                // A nested call issued from a worker must not hop to
                // another worker (it runs inline).
                if (from_worker) {
                    EXPECT_TRUE(ThreadPool::onWorkerThread());
                }
                for (int64_t i = ib; i < ie; ++i)
                    ++hits[o * inner + i];
            });
        }
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              outer * inner);
    EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
    EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ParallelFor, ExceptionInWorkerShardPropagates)
{
    ThreadPool pool(4);
    // Index n-1 lands in the last shard, which a worker executes.
    EXPECT_THROW(
        pool.parallelFor(0, 1000, 1,
                         [&](int64_t b, int64_t e) {
                             for (int64_t i = b; i < e; ++i)
                                 if (i == 999)
                                     throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ParallelFor, ExceptionInCallerShardPropagates)
{
    ThreadPool pool(4);
    // Index 0 lands in the first shard, which the caller executes.
    EXPECT_THROW(pool.parallelFor(0, 1000, 1,
                                  [&](int64_t b, int64_t) {
                                      if (b == 0)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The pool must stay usable afterwards.
    std::atomic<int64_t> sum{0};
    pool.parallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
        sum += e - b;
    });
    EXPECT_EQ(sum.load(), 100);
}

TEST(ParallelFor, StressManyBatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
        const int64_t n = 1 + (round * 37) % 500;
        std::vector<int64_t> vals(n, 0);
        pool.parallelFor(0, n, 1, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                vals[i] = i;
        });
        int64_t sum = 0;
        for (int64_t v : vals)
            sum += v;
        ASSERT_EQ(sum, n * (n - 1) / 2) << "round " << round;
    }
}

TEST(ThreadPool, EnvVarSizesDefaultPool)
{
    ASSERT_EQ(setenv("VITDYN_THREADS", "3", 1), 0);
    {
        ThreadPool pool(0);
        EXPECT_EQ(pool.threads(), 3);
    }
    ASSERT_EQ(setenv("VITDYN_THREADS", "bogus", 1), 0);
    {
        ThreadPool pool(0);
        EXPECT_GE(pool.threads(), 1);
    }
    unsetenv("VITDYN_THREADS");
}

TEST(ThreadPool, ResizeTakesEffect)
{
    ThreadPool pool(2);
    pool.resize(5);
    EXPECT_EQ(pool.threads(), 5);
    std::vector<int> hits(1000, 0);
    pool.parallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    pool.resize(1);
    EXPECT_EQ(pool.threads(), 1);
}

TEST(ThreadPool, GlobalInstanceIsUsable)
{
    std::atomic<int64_t> count{0};
    parallelFor(0, 256, 1, [&](int64_t b, int64_t e) {
        count += e - b;
    });
    EXPECT_EQ(count.load(), 256);
    EXPECT_GE(ThreadPool::instance().threads(), 1);
}

TEST(ThreadPool, ReportsMetrics)
{
    // Force sharded execution on the global pool (metrics are
    // process-wide) and check the counters move.
    ThreadPool &pool = ThreadPool::instance();
    if (pool.threads() < 2)
        pool.resize(2);
    MetricsSnapshot before = MetricsRegistry::instance().snapshot();
    std::atomic<int64_t> sink{0};
    pool.parallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
        sink += e - b;
    });
    MetricsSnapshot after = MetricsRegistry::instance().snapshot();
    EXPECT_GT(after.counterValue("pool.parallel_fors"),
              before.counterValue("pool.parallel_fors"));
    EXPECT_GT(after.counterValue("pool.tasks"),
              before.counterValue("pool.tasks"));
    const HistogramSnapshot *h = after.findHistogram("pool.shard_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_GT(h->count, 0u);
    pool.resize(0);
}

TEST(GrainForFlops, ScalesInverselyWithItemCost)
{
    EXPECT_GE(grainForFlops(0), 1);
    EXPECT_EQ(grainForFlops(1 << 18), 1);
    EXPECT_EQ(grainForFlops(1 << 17), 2);
    EXPECT_GT(grainForFlops(8), grainForFlops(1024));
    EXPECT_GE(grainForFlops(int64_t{1} << 40), 1);
}

} // namespace
} // namespace vitdyn
