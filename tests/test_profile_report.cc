/** @file Tests of the report helpers (profile tables, Table I rows),
 * Table CSV file output, the 3-objective DSE frontier, and the larger
 * SegFormer presets. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "accel/dse.hh"
#include "models/segformer.hh"
#include "profile/report.hh"

namespace vitdyn
{
namespace
{

TEST(Report, ProfileTableHasRowPerGroup)
{
    Graph g = buildSegformer(segformerB0Config());
    GpuLatencyModel gpu;
    Profile p(g, gpu);
    Table t = profileTable("title", p);
    EXPECT_EQ(t.numRows(), p.groups().size());
    EXPECT_NE(t.toString().find("Conv"), std::string::npos);
}

TEST(Report, ModelSummaryRow)
{
    Graph g = buildSegformer(segformerB0Config());
    GpuLatencyModel gpu;
    ModelSummary s = summarizeModel(g, gpu, "ADE20K", "SS", 0.376);
    EXPECT_EQ(s.model, "segformer_b0");
    EXPECT_EQ(s.task, "SS");
    EXPECT_GT(s.paramsM, 1.0);
    EXPECT_GT(s.gflops, 1.0);
    EXPECT_GT(s.fps, 0.0);
    EXPECT_NEAR(s.fps * s.latencyMs, 1000.0, 1.0);

    Table t = modelSummaryTable({s});
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_NE(t.toString().find("segformer_b0"), std::string::npos);
}

TEST(Report, TableCsvFileRoundTrip)
{
    Table t("csvfile", {"a", "b"});
    t.addRow({"1", "two"});
    const std::string path = "/tmp/vitdyn_table_test.csv";
    t.writeCsv(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::string row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_EQ(header, "a,b");
    EXPECT_EQ(row, "1,two");
    std::remove(path.c_str());
}

TEST(Dse, Pareto3ContainsExtremes)
{
    SegformerConfig small = segformerB0Config();
    small.imageH = small.imageW = 128;
    Graph g = buildSegformer(small);
    DseOptions opts;
    opts.k0Grid = {16, 32};
    opts.c0Grid = {16, 32};
    opts.weightMemKbGrid = {64, 1024};
    opts.activationMemKbGrid = {64};
    auto points = exploreDesignSpace(g, opts);
    auto frontier = paretoFrontier3(points);
    EXPECT_FALSE(frontier.empty());
    EXPECT_LE(frontier.size(), points.size());

    // The per-objective optima are never dominated.
    auto contains = [&](const DsePoint &target) {
        for (const DsePoint &p : frontier)
            if (p.config.name == target.config.name)
                return true;
        return false;
    };
    EXPECT_TRUE(contains(bestByLatency(points)));
    EXPECT_TRUE(contains(bestByEnergy(points)));
}

TEST(Dse, Pareto3NoMemberDominated)
{
    SegformerConfig small = segformerB0Config();
    small.imageH = small.imageW = 128;
    Graph g = buildSegformer(small);
    DseOptions opts;
    opts.k0Grid = {16, 32};
    opts.c0Grid = {32};
    opts.weightMemKbGrid = {64, 128, 1024};
    opts.activationMemKbGrid = {32, 64};
    auto points = exploreDesignSpace(g, opts);
    auto frontier = paretoFrontier3(points);
    for (const DsePoint &f : frontier)
        for (const DsePoint &p : points) {
            const bool dominates = p.cycles <= f.cycles &&
                                   p.energyMj <= f.energyMj &&
                                   p.areaMm2 <= f.areaMm2 &&
                                   (p.cycles < f.cycles ||
                                    p.energyMj < f.energyMj ||
                                    p.areaMm2 < f.areaMm2);
            EXPECT_FALSE(dominates)
                << p.config.name << " dominates " << f.config.name;
        }
}

TEST(SegformerPresets, B3B4B5Ordering)
{
    Graph b2 = buildSegformer(segformerB2Config());
    Graph b3 = buildSegformer(segformerB3Config());
    Graph b4 = buildSegformer(segformerB4Config());
    Graph b5 = buildSegformer(segformerB5Config());
    EXPECT_LT(b2.totalParams(), b3.totalParams());
    EXPECT_LT(b3.totalParams(), b4.totalParams());
    EXPECT_LT(b4.totalParams(), b5.totalParams());
    EXPECT_LT(b3.totalFlops(), b5.totalFlops());
    // Published: B5 ~84.7 M params (encoder+head). Allow 10%.
    EXPECT_NEAR(b5.totalParams() / 1e6, 84.7, 8.5);
}

} // namespace
} // namespace vitdyn
