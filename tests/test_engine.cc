/** @file Tests of the DRT inference engine (Fig 8): LUT semantics and
 * dynamic path selection under resource budgets. */

#include <gtest/gtest.h>

#include "engine/engine.hh"
#include "util/random.hh"

#include <cstring>

namespace vitdyn
{
namespace
{

/** A small SegFormer so engine tests execute real tensors quickly. */
SegformerConfig
tinyBase()
{
    SegformerConfig cfg;
    cfg.name = "segformer_tiny_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

/** Three hand-made LUT points: full / mid / small. */
std::vector<TradeoffPoint>
tinyPoints()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config = {"full", {2, 2, 2, 2}, 0, 0, 0, 1.0, 1.0};
    pts[0].normalizedUtil = 1.0;
    pts[0].absoluteUtil = 100.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].config = {"mid", {2, 2, 2, 2}, 64, 0, 0, 0.8, 0.9};
    pts[1].normalizedUtil = 0.8;
    pts[1].absoluteUtil = 80.0;
    pts[1].normalizedMiou = 0.9;
    pts[2].config = {"small", {1, 1, 1, 1}, 48, 0, 0, 0.6, 0.7};
    pts[2].normalizedUtil = 0.6;
    pts[2].absoluteUtil = 60.0;
    pts[2].normalizedMiou = 0.7;
    return pts;
}

TEST(Lut, KeepsParetoSortedByCost)
{
    auto pts = tinyPoints();
    // Add a dominated point: more cost, less accuracy than "mid".
    TradeoffPoint bad;
    bad.config.label = "bad";
    bad.config.depths = {2, 2, 2, 2};
    bad.normalizedUtil = 0.9;
    bad.absoluteUtil = 90.0;
    bad.normalizedMiou = 0.85;
    pts.push_back(bad);

    AccuracyResourceLut lut(pts, "ms");
    ASSERT_EQ(lut.entries().size(), 3u);
    for (size_t i = 1; i < lut.entries().size(); ++i)
        EXPECT_LT(lut.entries()[i - 1].resourceCost,
                  lut.entries()[i].resourceCost);
}

TEST(Lut, LookupMaximizesAccuracyWithinBudget)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    const LutEntry *e = lut.lookup(85.0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config.label, "mid");
    e = lut.lookup(1000.0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config.label, "full");
    e = lut.lookup(60.0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config.label, "small");
}

TEST(Lut, LookupFailsBelowCheapest)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    EXPECT_EQ(lut.lookup(59.9), nullptr);
    EXPECT_EQ(lut.cheapest().config.label, "small");
    EXPECT_EQ(lut.best().config.label, "full");
}

class EngineFixture : public testing::Test
{
  protected:
    EngineFixture()
        : engine_(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                  AccuracyResourceLut(tinyPoints(), "ms"), 17)
    {
    }

    DrtEngine engine_;
};

TEST_F(EngineFixture, PathsPreparedForEveryEntry)
{
    EXPECT_EQ(engine_.numPaths(), 3u);
    // Paths get cheaper in the LUT's cost order.
    EXPECT_LT(engine_.pathGraph(0).totalFlops(),
              engine_.pathGraph(2).totalFlops());
}

TEST_F(EngineFixture, SelectRespectsBudget)
{
    bool met = false;
    EXPECT_EQ(engine_.select(100.0, &met).config.label, "full");
    EXPECT_TRUE(met);
    EXPECT_EQ(engine_.select(70.0, &met).config.label, "small");
    EXPECT_TRUE(met);
}

TEST_F(EngineFixture, SelectFallsBackToCheapest)
{
    bool met = true;
    EXPECT_EQ(engine_.select(10.0, &met).config.label, "small");
    EXPECT_FALSE(met);
}

TEST_F(EngineFixture, InferRunsChosenPath)
{
    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);

    DrtResult full = engine_.infer(image, 1000.0);
    EXPECT_EQ(full.configLabel, "full");
    EXPECT_TRUE(full.budgetMet);
    EXPECT_EQ(full.output.shape(), (Shape{1, 6, 64, 64}));
    EXPECT_DOUBLE_EQ(full.accuracyEstimate, 1.0);

    DrtResult small = engine_.infer(image, 60.0);
    EXPECT_EQ(small.configLabel, "small");
    EXPECT_EQ(small.output.shape(), (Shape{1, 6, 64, 64}));
    EXPECT_LT(small.accuracyEstimate, full.accuracyEstimate);
}

TEST(EngineOptions, PassPipelineServesBitIdenticalAndSmallerGraphs)
{
    DrtEngineOptions opts;
    opts.passPipeline = true;
    DrtEngine rewritten(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                        AccuracyResourceLut(tinyPoints(), "ms"), 17,
                        opts);
    DrtEngine plain(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                    AccuracyResourceLut(tinyPoints(), "ms"), 17);

    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    DrtResult a = rewritten.infer(image, 1000.0);
    DrtResult b = plain.infer(image, 1000.0);
    EXPECT_EQ(a.configLabel, b.configLabel);
    ASSERT_EQ(a.output.shape(), b.output.shape());
    EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                          sizeof(float) * a.output.numel()),
              0);
    // The pipeline did rewrite the served path, not just run.
    EXPECT_LT(rewritten.pathGraph(2).numLayers(),
              plain.pathGraph(2).numLayers());
}

TEST_F(EngineFixture, PrunedOutputDeviatesButCorrelates)
{
    // Different execution paths share weights: outputs differ but not
    // wildly (the paper's resilience premise).
    Rng rng(2);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    Tensor full = engine_.infer(image, 1000.0).output;
    Tensor mid = engine_.infer(image, 85.0).output;
    EXPECT_FALSE(full.allClose(mid, 1e-6f));

    // Correlation proxy: the mean absolute difference stays below the
    // full output's scale.
    double diff = 0.0;
    for (int64_t i = 0; i < full.numel(); ++i)
        diff += std::abs(full[i] - mid[i]);
    diff /= full.numel();
    EXPECT_LT(diff, full.maxAbs());
}

class EngineBudgetSweep : public testing::TestWithParam<double> {};

TEST_P(EngineBudgetSweep, CostNeverExceedsBudgetWhenMet)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    bool met = false;
    const LutEntry &e = engine.select(GetParam(), &met);
    if (met) {
        EXPECT_LE(e.resourceCost, GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, EngineBudgetSweep,
                         testing::Values(10.0, 59.0, 60.0, 75.0, 80.0,
                                         99.0, 100.0, 500.0));

TEST(Engine, EmptyLutFatal)
{
    EXPECT_DEATH(DrtEngine(ModelFamily::Segformer, tinyBase(),
                           SwinConfig{},
                           AccuracyResourceLut({}, "ms"), 1),
                 "non-empty LUT");
}

TEST(Engine, CreateReportsEmptyLutRecoverably)
{
    // The serving entry point must survive a bad LUT without dying.
    auto r = DrtEngine::create(ModelFamily::Segformer, tinyBase(),
                               SwinConfig{},
                               AccuracyResourceLut({}, "ms"), 1);
    ASSERT_FALSE(r.isOk());
    EXPECT_NE(r.status().message().find("no entries"),
              std::string::npos);
}

TEST(Engine, CreateBuildsWorkingEngine)
{
    auto r = DrtEngine::create(ModelFamily::Segformer, tinyBase(),
                               SwinConfig{},
                               AccuracyResourceLut(tinyPoints(), "ms"),
                               17);
    ASSERT_TRUE(r.isOk()) << r.status().message();
    EXPECT_EQ(r.value()->numPaths(), 3u);
}

TEST(LutCsv, MalformedInputsAreRecoverableErrors)
{
    const std::string good = AccuracyResourceLut(tinyPoints(), "ms")
                                 .toCsv();

    // Each malformation must produce an error, never an abort.
    const std::pair<std::string, std::string> cases[] = {
        {"", "missing unit header"},
        {"unit,ms\n", "missing column header"},
        {"garbage\nmore garbage\n", "missing unit header"},
        // Lost fields vs unparseable cell produce distinct messages,
        // so an operator knows whether the file was cut or hand-edited.
        {"unit,ms\nlabel,d0,d1,d2,d3,fuse,pred,dl0,cost,norm_cost,"
         "accuracy\nA,1,2,3\n",
         "truncated row"},
        {"unit,ms\nlabel,d0,d1,d2,d3,fuse,pred,dl0,cost,norm_cost,"
         "accuracy\nA,x,2,2,2,0,0,0,10,1,1\n",
         "malformed number 'x'"},
        // Full-consumption parsing: trailing garbage on a numeric
        // cell is malformed, not silently accepted as its prefix.
        {"unit,ms\nlabel,d0,d1,d2,d3,fuse,pred,dl0,cost,norm_cost,"
         "accuracy\nA,3x,2,2,2,0,0,0,10,1,1\n",
         "malformed number '3x'"},
        {"unit,ms\nlabel,d0,d1,d2,d3,fuse,pred,dl0,cost,norm_cost,"
         "accuracy\nA,2,2,2,2,0,0,0,nan,1,1\n",
         "non-finite or negative"},
        {"unit,ms\nlabel,d0,d1,d2,d3,fuse,pred,dl0,cost,norm_cost,"
         "accuracy\nA,2,2,2,2,0,0,0,-5,1,1\n",
         "non-finite or negative"},
        // Truncating a valid CSV mid-row must fail cleanly too.
        {good.substr(0, good.size() - 20), "truncated row"},
    };
    for (const auto &[csv, expected] : cases) {
        Result<AccuracyResourceLut> r = AccuracyResourceLut::fromCsv(csv);
        ASSERT_FALSE(r.isOk()) << "accepted: " << csv;
        EXPECT_NE(r.status().message().find(expected), std::string::npos)
            << "message '" << r.status().message()
            << "' does not mention '" << expected << "'";
    }
}

TEST(LutCsv, RoundTripFuzz)
{
    // Random LUTs survive serialize -> parse -> serialize unchanged,
    // and mutilated serializations never abort the parser.
    Rng rng(2024);
    for (int iter = 0; iter < 50; ++iter) {
        const int n = static_cast<int>(rng.uniformInt(1, 6));
        std::vector<TradeoffPoint> pts(n);
        for (int i = 0; i < n; ++i) {
            pts[i].config.label = "cfg" + std::to_string(i);
            for (int d = 0; d < 4; ++d)
                pts[i].config.depths[d] = rng.uniformInt(1, 4);
            pts[i].config.fuseInChannels = rng.uniformInt(0, 512);
            pts[i].absoluteUtil = rng.uniform(1.0, 100.0);
            // Strictly increasing accuracy with cost keeps every
            // point on the Pareto frontier regardless of cost order.
            pts[i].normalizedUtil = pts[i].absoluteUtil / 100.0;
            pts[i].normalizedMiou = pts[i].absoluteUtil / 100.0;
        }
        AccuracyResourceLut lut(pts, "ms");
        Result<AccuracyResourceLut> loaded =
            AccuracyResourceLut::fromCsv(lut.toCsv());
        ASSERT_TRUE(loaded.isOk()) << loaded.status().message();
        EXPECT_EQ(loaded.value().toCsv(), lut.toCsv());

        // Chop the text at a random point: must error or parse, never
        // crash; a successful parse can only have fewer entries.
        const std::string csv = lut.toCsv();
        const size_t cut = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(csv.size())));
        Result<AccuracyResourceLut> chopped =
            AccuracyResourceLut::fromCsv(csv.substr(0, cut));
        if (chopped.isOk()) {
            EXPECT_LE(chopped.value().entries().size(),
                      lut.entries().size());
        }
    }
}

} // namespace
} // namespace vitdyn
