/** @file Tests of the DRT inference engine (Fig 8): LUT semantics and
 * dynamic path selection under resource budgets. */

#include <gtest/gtest.h>

#include "engine/engine.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

/** A small SegFormer so engine tests execute real tensors quickly. */
SegformerConfig
tinyBase()
{
    SegformerConfig cfg;
    cfg.name = "segformer_tiny_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

/** Three hand-made LUT points: full / mid / small. */
std::vector<TradeoffPoint>
tinyPoints()
{
    std::vector<TradeoffPoint> pts(3);
    pts[0].config = {"full", {2, 2, 2, 2}, 0, 0, 0, 1.0, 1.0};
    pts[0].normalizedUtil = 1.0;
    pts[0].absoluteUtil = 100.0;
    pts[0].normalizedMiou = 1.0;
    pts[1].config = {"mid", {2, 2, 2, 2}, 64, 0, 0, 0.8, 0.9};
    pts[1].normalizedUtil = 0.8;
    pts[1].absoluteUtil = 80.0;
    pts[1].normalizedMiou = 0.9;
    pts[2].config = {"small", {1, 1, 1, 1}, 48, 0, 0, 0.6, 0.7};
    pts[2].normalizedUtil = 0.6;
    pts[2].absoluteUtil = 60.0;
    pts[2].normalizedMiou = 0.7;
    return pts;
}

TEST(Lut, KeepsParetoSortedByCost)
{
    auto pts = tinyPoints();
    // Add a dominated point: more cost, less accuracy than "mid".
    TradeoffPoint bad;
    bad.config.label = "bad";
    bad.config.depths = {2, 2, 2, 2};
    bad.normalizedUtil = 0.9;
    bad.absoluteUtil = 90.0;
    bad.normalizedMiou = 0.85;
    pts.push_back(bad);

    AccuracyResourceLut lut(pts, "ms");
    ASSERT_EQ(lut.entries().size(), 3u);
    for (size_t i = 1; i < lut.entries().size(); ++i)
        EXPECT_LT(lut.entries()[i - 1].resourceCost,
                  lut.entries()[i].resourceCost);
}

TEST(Lut, LookupMaximizesAccuracyWithinBudget)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    const LutEntry *e = lut.lookup(85.0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config.label, "mid");
    e = lut.lookup(1000.0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config.label, "full");
    e = lut.lookup(60.0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->config.label, "small");
}

TEST(Lut, LookupFailsBelowCheapest)
{
    AccuracyResourceLut lut(tinyPoints(), "ms");
    EXPECT_EQ(lut.lookup(59.9), nullptr);
    EXPECT_EQ(lut.cheapest().config.label, "small");
    EXPECT_EQ(lut.best().config.label, "full");
}

class EngineFixture : public testing::Test
{
  protected:
    EngineFixture()
        : engine_(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                  AccuracyResourceLut(tinyPoints(), "ms"), 17)
    {
    }

    DrtEngine engine_;
};

TEST_F(EngineFixture, PathsPreparedForEveryEntry)
{
    EXPECT_EQ(engine_.numPaths(), 3u);
    // Paths get cheaper in the LUT's cost order.
    EXPECT_LT(engine_.pathGraph(0).totalFlops(),
              engine_.pathGraph(2).totalFlops());
}

TEST_F(EngineFixture, SelectRespectsBudget)
{
    bool met = false;
    EXPECT_EQ(engine_.select(100.0, &met).config.label, "full");
    EXPECT_TRUE(met);
    EXPECT_EQ(engine_.select(70.0, &met).config.label, "small");
    EXPECT_TRUE(met);
}

TEST_F(EngineFixture, SelectFallsBackToCheapest)
{
    bool met = true;
    EXPECT_EQ(engine_.select(10.0, &met).config.label, "small");
    EXPECT_FALSE(met);
}

TEST_F(EngineFixture, InferRunsChosenPath)
{
    Rng rng(1);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);

    DrtResult full = engine_.infer(image, 1000.0);
    EXPECT_EQ(full.configLabel, "full");
    EXPECT_TRUE(full.budgetMet);
    EXPECT_EQ(full.output.shape(), (Shape{1, 6, 64, 64}));
    EXPECT_DOUBLE_EQ(full.accuracyEstimate, 1.0);

    DrtResult small = engine_.infer(image, 60.0);
    EXPECT_EQ(small.configLabel, "small");
    EXPECT_EQ(small.output.shape(), (Shape{1, 6, 64, 64}));
    EXPECT_LT(small.accuracyEstimate, full.accuracyEstimate);
}

TEST_F(EngineFixture, PrunedOutputDeviatesButCorrelates)
{
    // Different execution paths share weights: outputs differ but not
    // wildly (the paper's resilience premise).
    Rng rng(2);
    Tensor image = Tensor::randn({1, 3, 64, 64}, rng);
    Tensor full = engine_.infer(image, 1000.0).output;
    Tensor mid = engine_.infer(image, 85.0).output;
    EXPECT_FALSE(full.allClose(mid, 1e-6f));

    // Correlation proxy: the mean absolute difference stays below the
    // full output's scale.
    double diff = 0.0;
    for (int64_t i = 0; i < full.numel(); ++i)
        diff += std::abs(full[i] - mid[i]);
    diff /= full.numel();
    EXPECT_LT(diff, full.maxAbs());
}

class EngineBudgetSweep : public testing::TestWithParam<double> {};

TEST_P(EngineBudgetSweep, CostNeverExceedsBudgetWhenMet)
{
    DrtEngine engine(ModelFamily::Segformer, tinyBase(), SwinConfig{},
                     AccuracyResourceLut(tinyPoints(), "ms"), 17);
    bool met = false;
    const LutEntry &e = engine.select(GetParam(), &met);
    if (met) {
        EXPECT_LE(e.resourceCost, GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, EngineBudgetSweep,
                         testing::Values(10.0, 59.0, 60.0, 75.0, 80.0,
                                         99.0, 100.0, 500.0));

TEST(Engine, EmptyLutFatal)
{
    EXPECT_DEATH(DrtEngine(ModelFamily::Segformer, tinyBase(),
                           SwinConfig{},
                           AccuracyResourceLut({}, "ms"), 1),
                 "non-empty LUT");
}

} // namespace
} // namespace vitdyn
