/** @file Tests of layer descriptors: FLOPs, params, shape inference. */

#include <gtest/gtest.h>

#include "graph/layer.hh"

namespace vitdyn
{
namespace
{

Layer
makeConv(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
         int64_t pad, int64_t groups = 1)
{
    Layer l;
    l.name = "conv";
    l.kind = LayerKind::Conv2d;
    l.attrs.inChannels = in_c;
    l.attrs.outChannels = out_c;
    l.attrs.kernelH = l.attrs.kernelW = kernel;
    l.attrs.strideH = l.attrs.strideW = stride;
    l.attrs.padH = l.attrs.padW = pad;
    l.attrs.groups = groups;
    return l;
}

TEST(LayerShape, Conv2d)
{
    Layer l = makeConv(3, 64, 7, 4, 3);
    Shape out = inferShape(l, {{1, 3, 512, 512}});
    EXPECT_EQ(out, (Shape{1, 64, 128, 128}));
}

TEST(LayerShape, ConvChannelMismatchFatal)
{
    Layer l = makeConv(4, 8, 1, 1, 0);
    EXPECT_DEATH(inferShape(l, {{1, 3, 8, 8}}), "expects C=");
}

TEST(LayerFlops, ConvMacCount)
{
    // The paper's headline number: Conv2DFuse is a 1x1 conv
    // 3072 -> 768 at 128x128, 38.65 GMACs.
    Layer l = makeConv(3072, 768, 1, 1, 0);
    l.outShape = inferShape(l, {{1, 3072, 128, 128}});
    EXPECT_EQ(l.macs(), 128LL * 128 * 3072 * 768);
    EXPECT_EQ(l.flops(), l.macs()); // MAC counting convention
}

TEST(LayerFlops, DepthwiseConv)
{
    Layer l = makeConv(256, 256, 3, 1, 1, 256);
    l.outShape = inferShape(l, {{1, 256, 128, 128}});
    EXPECT_EQ(l.macs(), 128LL * 128 * 256 * 9);
}

TEST(LayerParams, ConvWeightAndBias)
{
    Layer l = makeConv(16, 32, 3, 1, 1);
    EXPECT_EQ(l.paramCount(), 32 * 16 * 9 + 32);
    l.attrs.hasBias = false;
    EXPECT_EQ(l.paramCount(), 32 * 16 * 9);
}

TEST(LayerParams, GroupedConv)
{
    Layer l = makeConv(32, 32, 3, 1, 1, 32);
    EXPECT_EQ(l.paramCount(), 32 * 1 * 9 + 32);
}

TEST(LayerShape, Linear)
{
    Layer l;
    l.kind = LayerKind::Linear;
    l.attrs.inFeatures = 64;
    l.attrs.outFeatures = 768;
    Shape out = inferShape(l, {{1, 16384, 64}});
    EXPECT_EQ(out, (Shape{1, 16384, 768}));
    l.outShape = out;
    // DecodeLinear0: 1.3% of SegFormer-B2's FLOPs (0.81 GMACs).
    EXPECT_EQ(l.macs(), 16384LL * 64 * 768);
    EXPECT_EQ(l.paramCount(), 768 * 64 + 768);
}

TEST(LayerShape, AttentionScoreAndContext)
{
    Layer score;
    score.kind = LayerKind::AttentionScore;
    score.attrs.inFeatures = 64;
    score.attrs.numHeads = 2;
    Shape s = inferShape(score, {{1, 100, 64}, {1, 25, 64}});
    EXPECT_EQ(s, (Shape{1, 2, 100, 25}));
    score.outShape = s;
    // MACs = N * Lq * Lkv * C.
    EXPECT_EQ(score.macs(), 1LL * 100 * 25 * 64);

    Layer ctx;
    ctx.kind = LayerKind::AttentionContext;
    ctx.attrs.inFeatures = 25; // Lkv
    ctx.attrs.numHeads = 2;
    Shape c = inferShape(ctx, {s, {1, 25, 64}});
    EXPECT_EQ(c, (Shape{1, 100, 64}));
    ctx.outShape = c;
    EXPECT_EQ(ctx.macs(), 1LL * 100 * 25 * 64);
}

TEST(LayerShape, AddRequiresEqualShapes)
{
    Layer l;
    l.kind = LayerKind::Add;
    EXPECT_DEATH(inferShape(l, {{1, 4}, {1, 5}}), "equal shapes");
}

TEST(LayerShape, ConcatChannelsAndTokens)
{
    Layer l;
    l.kind = LayerKind::Concat;
    EXPECT_EQ(inferShape(l, {{1, 3, 8, 8}, {1, 5, 8, 8}}),
              (Shape{1, 8, 8, 8}));
    EXPECT_EQ(inferShape(l, {{1, 10, 4}, {1, 6, 4}}), (Shape{1, 16, 4}));
}

TEST(LayerShape, Narrow)
{
    Layer l;
    l.kind = LayerKind::Narrow;
    l.attrs.outChannels = 5;
    EXPECT_EQ(inferShape(l, {{1, 8, 4, 4}}), (Shape{1, 5, 4, 4}));
    EXPECT_EQ(inferShape(l, {{1, 10, 8}}), (Shape{1, 10, 5}));
}

TEST(LayerShape, NarrowWideningFatal)
{
    Layer l;
    l.kind = LayerKind::Narrow;
    l.attrs.outChannels = 12;
    EXPECT_DEATH(inferShape(l, {{1, 8, 4, 4}}), "narrow");
}

TEST(LayerShape, WindowPartitionReverse)
{
    Layer part;
    part.kind = LayerKind::WindowPartition;
    part.attrs.gridH = 14;
    part.attrs.gridW = 14;
    part.attrs.window = 7;
    Shape w = inferShape(part, {{2, 196, 96}});
    EXPECT_EQ(w, (Shape{8, 49, 96}));

    Layer rev;
    rev.kind = LayerKind::WindowReverse;
    rev.attrs.gridH = 14;
    rev.attrs.gridW = 14;
    rev.attrs.window = 7;
    EXPECT_EQ(inferShape(rev, {w}), (Shape{2, 196, 96}));
}

TEST(LayerShape, TokensImageRoundTrip)
{
    Layer ti;
    ti.kind = LayerKind::TokensToImage;
    ti.attrs.gridH = 4;
    ti.attrs.gridW = 8;
    EXPECT_EQ(inferShape(ti, {{1, 32, 16}}), (Shape{1, 16, 4, 8}));

    Layer it;
    it.kind = LayerKind::ImageToTokens;
    EXPECT_EQ(inferShape(it, {{1, 16, 4, 8}}), (Shape{1, 32, 16}));
}

TEST(LayerCategory, Mapping)
{
    EXPECT_EQ(makeConv(1, 1, 1, 1, 0).category(), OpCategory::Conv);

    Layer l;
    l.kind = LayerKind::Linear;
    EXPECT_EQ(l.category(), OpCategory::MatMul);
    l.kind = LayerKind::Softmax;
    EXPECT_EQ(l.category(), OpCategory::Softmax);
    l.kind = LayerKind::LayerNorm;
    EXPECT_EQ(l.category(), OpCategory::Norm);
    l.kind = LayerKind::GELU;
    EXPECT_EQ(l.category(), OpCategory::Activation);
    l.kind = LayerKind::Interpolate;
    EXPECT_EQ(l.category(), OpCategory::Memory);
}

TEST(LayerFlops, BypassedLayerIsFree)
{
    Layer l = makeConv(64, 64, 3, 1, 1);
    l.outShape = {1, 64, 32, 32};
    EXPECT_GT(l.flops(), 0);
    l.bypassed = true;
    EXPECT_EQ(l.flops(), 0);
    EXPECT_EQ(l.macs(), 0);
    EXPECT_EQ(l.paramCount(), 0);
}

TEST(LayerFlops, NonMacKinds)
{
    Layer l;
    l.kind = LayerKind::Softmax;
    l.outShape = {2, 10};
    EXPECT_EQ(l.flops(), 5 * 20);
    l.kind = LayerKind::LayerNorm;
    EXPECT_EQ(l.flops(), 8 * 20);
    l.kind = LayerKind::ReLU;
    EXPECT_EQ(l.flops(), 20);
    l.kind = LayerKind::Concat;
    EXPECT_EQ(l.flops(), 0);
}

TEST(LayerBytes, OutputAndWeights)
{
    Layer l = makeConv(16, 32, 1, 1, 0);
    l.outShape = {1, 32, 8, 8};
    EXPECT_EQ(l.outputBytes(1), 32 * 64);
    EXPECT_EQ(l.outputBytes(4), 4 * 32 * 64);
    EXPECT_EQ(l.weightBytes(1), l.paramCount());
}

} // namespace
} // namespace vitdyn
