/** @file End-to-end integration tests: the full Section III -> IV loop
 * on a scaled-down model with real tensor execution — graph surgery,
 * shared weights, measured (synthetic) mIoU, LUT, and the DRT engine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.hh"
#include "graph/surgery.hh"
#include "profile/gpu_model.hh"
#include "tensor/quant.hh"
#include "workload/metrics.hh"
#include "workload/synthetic.hh"

namespace vitdyn
{
namespace
{

SegformerConfig
smallConfig()
{
    SegformerConfig cfg;
    cfg.name = "segformer_small_test";
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 6;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.depths = {2, 2, 2, 2};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderDim = 32;
    return cfg;
}

/** Agreement of a pruned path with the full model over a few scenes:
 * argmax mIoU plus the mean relative logit deviation. */
struct Agreement
{
    double miou = 0.0;
    double relError = 0.0;
};

Agreement
measuredAgreement(const SegformerConfig &base, const PruneConfig &config,
                  int scenes = 3)
{
    Graph full = buildSegformer(base);
    Graph pruned = applySegformerPrune(base, config);
    Executor fe(full, 99);
    Executor pe(pruned, 99);
    registerFullDims(full, pe);

    SyntheticSegmentation gen(base.imageH, base.imageW, base.numClasses);
    Rng rng(123);
    Agreement a;
    for (int i = 0; i < scenes; ++i) {
        SegmentationSample s = gen.nextSample(rng);
        Tensor fy = fe.runSimple(s.image);
        Tensor py = pe.runSimple(s.image);
        a.miou += agreementMiou(fy, py);
        double diff = 0.0;
        for (int64_t j = 0; j < fy.numel(); ++j)
            diff += std::abs(fy[j] - py[j]);
        a.relError += diff / fy.numel() / std::max(1e-6f, fy.maxAbs());
    }
    a.miou /= scenes;
    a.relError /= scenes;
    return a;
}

TEST(Integration, UnprunedPathAgreesExactly)
{
    SegformerConfig base = smallConfig();
    PruneConfig identity{"id", {2, 2, 2, 2}, 0, 0, 0, 1.0, 1.0};
    Agreement a = measuredAgreement(base, identity, 2);
    EXPECT_DOUBLE_EQ(a.miou, 1.0);
    EXPECT_DOUBLE_EQ(a.relError, 0.0);
}

TEST(Integration, MeasuredAccuracyDegradesWithPruning)
{
    // The resilience premise on real tensor math: mild pruning keeps
    // high agreement with the full model; aggressive pruning loses
    // more. (Channel trimming keeps a weight-slice of the same model.)
    SegformerConfig base = smallConfig();
    PruneConfig mild{"mild", {2, 2, 2, 2}, 112, 0, 0, 0, 0};
    PruneConfig heavy{"heavy", {1, 1, 1, 1}, 48, 0, 0, 0, 0};
    const Agreement mild_a = measuredAgreement(base, mild);
    const Agreement heavy_a = measuredAgreement(base, heavy);
    // Logit deviation grows strictly with pruning severity; the argmax
    // agreement can only degrade (ties allowed — coarse scenes can
    // keep the same winning class everywhere).
    EXPECT_LT(mild_a.relError, heavy_a.relError);
    EXPECT_GT(mild_a.relError, 0.0);
    EXPECT_GE(mild_a.miou, heavy_a.miou);
}

TEST(Integration, SweepLutEngineRoundTrip)
{
    // Build a LUT from a real sweep (GPU-time cost on the small
    // model), then drive the engine across a varying budget stream.
    SegformerConfig base = smallConfig();
    GpuLatencyModel gpu;
    AccuracyModel acc(PrunedModelKind::SegformerB2Ade);

    std::vector<PruneConfig> candidates = {
        {"full", {2, 2, 2, 2}, 0, 0, 0, 0, 0},
        {"mid", {2, 2, 2, 2}, 96, 0, 0, 0, 0},
        {"small", {1, 2, 2, 2}, 64, 0, 0, 0, 0},
        {"tiny", {1, 1, 1, 1}, 48, 0, 0, 0, 0},
    };
    auto points = sweepSegformer(
        base, candidates, acc,
        [&](const Graph &g) { return gpu.graphTimeMs(g); });
    AccuracyResourceLut lut(points, "ms");
    ASSERT_GE(lut.entries().size(), 2u);

    DrtEngine engine(ModelFamily::Segformer, base, SwinConfig{},
                     lut, 7);
    Rng rng(5);
    SyntheticSegmentation gen(64, 64, 6);

    const double max_cost = lut.best().resourceCost;
    const double min_cost = lut.cheapest().resourceCost;
    double prev_acc = -1.0;
    for (double budget : {min_cost * 0.5, min_cost * 1.01,
                          (min_cost + max_cost) / 2, max_cost * 1.1}) {
        SegmentationSample s = gen.nextSample(rng);
        DrtResult r = engine.infer(s.image, budget);
        EXPECT_EQ(r.output.shape(), (Shape{1, 6, 64, 64}));
        if (r.budgetMet) {
            EXPECT_LE(r.resourceCost, budget);
        }
        // More budget never selects a less accurate path.
        EXPECT_GE(r.accuracyEstimate, prev_acc);
        prev_acc = r.accuracyEstimate;
    }
}

TEST(Integration, SurgeryPreservesLeadingChannelSemantics)
{
    // pruneInputChannels keeps the *first* channels: the pruned fuse
    // layer must see exactly the leading slice of the full concat.
    SegformerConfig base = smallConfig();
    Graph full = buildSegformer(base);
    Graph pruned = buildSegformer(base);
    pruneInputChannels(pruned, "Conv2DFuse", 96);

    Executor fe(full, 55);
    Executor pe(pruned, 55);
    registerFullDims(full, pe);

    Rng rng(6);
    Tensor x = Tensor::randn({1, 3, 64, 64}, rng);
    Tensor fy = fe.runSimple(x);
    Tensor py = pe.runSimple(x);
    EXPECT_EQ(fy.shape(), py.shape());
    // Outputs differ (channels dropped) but remain finite and sane.
    EXPECT_TRUE(std::isfinite(py.sum()));
}

TEST(Integration, QuantizedConvLayerOnRealModelActivation)
{
    // INT8 path (the accelerator's arithmetic) on an actual model
    // activation: quantization error stays small relative to range.
    SegformerConfig base = smallConfig();
    Graph g = buildSegformer(base);
    Executor exec(g, 3);
    Rng rng(8);
    Tensor logits = exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));

    QuantTensor q = quantize(logits);
    Tensor back = dequantize(q);
    EXPECT_LT(meanAbsError(logits, back), logits.maxAbs() / 127.0);

    // Argmax (the segmentation decision) is nearly unchanged.
    const double agreement = agreementMiou(logits, back);
    EXPECT_GT(agreement, 0.9);
}

TEST(Integration, EncoderBypassViaSurgeryMatchesRebuild)
{
    // Removing the last stage-0 block by surgery equals building with
    // depth-1 in FLOPs terms.
    SegformerConfig base = smallConfig();
    Graph surgical = buildSegformer(base);
    bypassBlock(surgical, "encoder.stage0.block1");

    SegformerConfig rebuilt_cfg = base;
    rebuilt_cfg.depths = {1, 2, 2, 2};
    Graph rebuilt = buildSegformer(rebuilt_cfg);
    EXPECT_EQ(surgical.totalFlops(), rebuilt.totalFlops());
    EXPECT_EQ(surgical.totalParams(), rebuilt.totalParams());
}

} // namespace
} // namespace vitdyn
