/** @file Tests of the conv-free ViT / BERT baselines: the Section II
 * contrast point ("zero convolutions in ViT and BERT"). */

#include <gtest/gtest.h>

#include "graph/executor.hh"
#include "models/vit.hh"
#include "profile/flops_profile.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Vit, ZeroConvolutions)
{
    Graph g = buildVit(vitB16Config());
    for (const Layer &l : g.layers())
        EXPECT_NE(l.kind, LayerKind::Conv2d) << l.name;
    EXPECT_DOUBLE_EQ(convFlopsShare(g), 0.0);
}

TEST(Vit, B16MatchesPublishedNumbers)
{
    // ViT-B/16 at 224x224: ~86 M params, ~17.6 GMACs.
    Graph g = buildVit(vitB16Config());
    EXPECT_NEAR(g.totalParams() / 1e6, 86.0, 4.0);
    EXPECT_NEAR(g.totalFlops() / 1e9, 17.6, 1.5);
}

TEST(Vit, L16LargerThanB16)
{
    Graph b = buildVit(vitB16Config());
    Graph l = buildVit(vitL16Config());
    // Published ViT-L/16: ~307 M params.
    EXPECT_NEAR(l.totalParams() / 1e6, 307.0, 15.0);
    EXPECT_GT(l.totalFlops(), 3 * b.totalFlops());
}

TEST(Vit, MatMulDominates)
{
    // The inverse of the paper's modern-ViT finding: with no convs,
    // virtually all FLOPs are matmuls (linear + attention).
    Graph g = buildVit(vitB16Config());
    int64_t matmul = 0;
    for (const Layer &l : g.layers())
        if (l.category() == OpCategory::MatMul)
            matmul += l.flops();
    EXPECT_GT(static_cast<double>(matmul) / g.totalFlops(), 0.98);
}

TEST(Vit, TokenCountFromPatches)
{
    VitConfig cfg = vitB16Config();
    Graph g = buildVit(cfg);
    const Shape &tokens = g.layer(g.findLayer("patch_proj")).outShape;
    EXPECT_EQ(tokens, (Shape{1, 196, 768}));
}

TEST(Vit, SmallModelExecutes)
{
    VitConfig cfg;
    cfg.imageH = cfg.imageW = 32;
    cfg.patch = 8;
    cfg.embedDim = 16;
    cfg.depth = 2;
    cfg.numHeads = 2;
    cfg.numClasses = 10;
    Graph g = buildVit(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 32, 32}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 16, 10}));
}

TEST(Vit, PatchifyRelayoutExact)
{
    // Patchify must place patch pixels channel-major, exactly as the
    // executor's inverse bookkeeping assumes.
    Graph g("p");
    int in = g.addInput("x", {1, 1, 4, 4});
    Layer p;
    p.name = "patchify";
    p.kind = LayerKind::Patchify;
    p.attrs.kernelH = 2;
    p.inputs = {in};
    g.markOutput(g.addLayer(std::move(p)));

    Executor exec(g, 1);
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    Tensor y = exec.runSimple(x);
    EXPECT_EQ(y.shape(), (Shape{1, 4, 4}));
    // First patch holds pixels (0,0), (0,1), (1,0), (1,1) = 0,1,4,5.
    EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 1.0f);
    EXPECT_FLOAT_EQ(y.at3(0, 0, 2), 4.0f);
    EXPECT_FLOAT_EQ(y.at3(0, 0, 3), 5.0f);
    // Second patch starts at (0, 2).
    EXPECT_FLOAT_EQ(y.at3(0, 1, 0), 2.0f);
}

TEST(Bert, ZeroConvolutionsAndPublishedSize)
{
    Graph g = buildBert(BertConfig{});
    EXPECT_DOUBLE_EQ(convFlopsShare(g), 0.0);
    // BERT-Base encoder stack: ~85 M params (without embeddings).
    EXPECT_NEAR(g.totalParams() / 1e6, 85.0, 5.0);
}

TEST(Bert, AttentionShareGrowsWithSequence)
{
    auto attention_share = [](int64_t seq) {
        BertConfig cfg;
        cfg.seqLen = seq;
        Graph g = buildBert(cfg);
        int64_t attn = 0;
        for (const Layer &l : g.layers())
            if (l.kind == LayerKind::AttentionScore ||
                l.kind == LayerKind::AttentionContext)
                attn += l.flops();
        return static_cast<double>(attn) / g.totalFlops();
    };
    EXPECT_LT(attention_share(128), attention_share(512));
    EXPECT_LT(attention_share(512), attention_share(2048));
}

TEST(Bert, SmallModelExecutes)
{
    BertConfig cfg;
    cfg.seqLen = 8;
    cfg.embedDim = 16;
    cfg.depth = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    Graph g = buildBert(cfg);
    Executor exec(g, 1);
    Rng rng(2);
    Tensor out = exec.runSimple(Tensor::randn({1, 8, 16}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 8, 16}));
}

} // namespace
} // namespace vitdyn
