/** @file Tests of softmax / normalization / activation / shape ops. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Softmax, RowsSumToOne)
{
    Rng rng(1);
    Tensor x = Tensor::randn({4, 7}, rng, 0.0f, 3.0f);
    Tensor y = softmax(x);
    for (int64_t r = 0; r < 4; ++r) {
        float sum = 0.0f;
        for (int64_t c = 0; c < 7; ++c) {
            sum += y.at2(r, c);
            EXPECT_GE(y.at2(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Softmax, ShiftInvariance)
{
    Rng rng(2);
    Tensor x = Tensor::randn({2, 5}, rng);
    Tensor shifted = x;
    for (int64_t i = 0; i < x.numel(); ++i)
        shifted[i] += 10.0f;
    EXPECT_TRUE(softmax(x).allClose(softmax(shifted), 1e-5f));
}

TEST(Softmax, LargeValuesStable)
{
    Tensor x({1, 3}, std::vector<float>{1000.0f, 999.0f, -1000.0f});
    Tensor y = softmax(x);
    EXPECT_FALSE(std::isnan(y[0]));
    EXPECT_GT(y[0], y[1]);
    EXPECT_NEAR(y[2], 0.0f, 1e-6f);
}

TEST(Softmax, PreservesArgmax)
{
    Rng rng(3);
    Tensor x = Tensor::randn({8, 16}, rng);
    Tensor y = softmax(x);
    for (int64_t r = 0; r < 8; ++r) {
        int64_t ax = 0;
        int64_t ay = 0;
        for (int64_t c = 1; c < 16; ++c) {
            if (x.at2(r, c) > x.at2(r, ax))
                ax = c;
            if (y.at2(r, c) > y.at2(r, ay))
                ay = c;
        }
        EXPECT_EQ(ax, ay);
    }
}

TEST(Softmax, SingleElementRow)
{
    Tensor x({3, 1}, std::vector<float>{5.0f, -3.0f, 0.0f});
    Tensor y = softmax(x);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(Softmax, AllEqualRowIsUniform)
{
    Tensor x({1, 4}, 7.0f);
    Tensor y = softmax(x);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(y[i], 0.25f, 1e-6f);
}

TEST(Softmax, FullyMaskedRowIsUniformNotNaN)
{
    // An attention mask can -inf out an entire row; softmax must not
    // return NaN (exp(-inf - -inf) / 0). Defined output: uniform.
    const float ninf = -std::numeric_limits<float>::infinity();
    Tensor x({2, 4}, std::vector<float>{ninf, ninf, ninf, ninf, //
                                        0.0f, 1.0f, 2.0f, 3.0f});
    Tensor y = softmax(x);
    float masked_sum = 0.0f;
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_FALSE(std::isnan(y[i])) << "index " << i;
        EXPECT_NEAR(y.at2(0, i), 0.25f, 1e-6f);
        masked_sum += y.at2(0, i);
    }
    EXPECT_NEAR(masked_sum, 1.0f, 1e-5f);
    // The unmasked row is untouched by the guard.
    float sum = 0.0f;
    for (int64_t i = 0; i < 4; ++i)
        sum += y.at2(1, i);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_GT(y.at2(1, 3), y.at2(1, 0));
}

TEST(Softmax, PartiallyMaskedRowRenormalizes)
{
    const float ninf = -std::numeric_limits<float>::infinity();
    Tensor x({1, 4}, std::vector<float>{ninf, 0.0f, ninf, 0.0f});
    Tensor y = softmax(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_NEAR(y[1], 0.5f, 1e-6f);
    EXPECT_FLOAT_EQ(y[2], 0.0f);
    EXPECT_NEAR(y[3], 0.5f, 1e-6f);
}

TEST(LayerNorm, ZeroMeanUnitVar)
{
    Rng rng(4);
    Tensor x = Tensor::randn({3, 64}, rng, 5.0f, 2.0f);
    Tensor gamma({64}, 1.0f);
    Tensor beta({64}, 0.0f);
    Tensor y = layerNorm(x, gamma, beta);
    for (int64_t r = 0; r < 3; ++r) {
        double mean = 0.0;
        double sq = 0.0;
        for (int64_t c = 0; c < 64; ++c) {
            mean += y.at2(r, c);
            sq += y.at2(r, c) * y.at2(r, c);
        }
        mean /= 64;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(sq / 64 - mean * mean, 1.0, 1e-2);
    }
}

TEST(LayerNorm, AffineApplied)
{
    Tensor x({1, 2}, std::vector<float>{-1.0f, 1.0f});
    Tensor gamma({2}, std::vector<float>{2.0f, 2.0f});
    Tensor beta({2}, std::vector<float>{5.0f, 5.0f});
    Tensor y = layerNorm(x, gamma, beta);
    // Normalized input is [-1, 1] (up to eps), so y ~ [3, 7].
    EXPECT_NEAR(y[0], 3.0f, 1e-2f);
    EXPECT_NEAR(y[1], 7.0f, 1e-2f);
}

TEST(LayerNorm, GoldenValues)
{
    // x = [1,2,3,4]: mean 2.5, var 1.25, normalized
    // [-1.5,-0.5,0.5,1.5]/sqrt(1.25) = [-1.34164,-0.44721,0.44721,
    // 1.34164]; gamma 2, beta 1 maps that to the values below.
    Tensor x({1, 4}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
    Tensor gamma({4}, 2.0f);
    Tensor beta({4}, 1.0f);
    Tensor y = layerNorm(x, gamma, beta);
    EXPECT_NEAR(y[0], -1.683281f, 1e-3f);
    EXPECT_NEAR(y[1], 0.105573f, 1e-3f);
    EXPECT_NEAR(y[2], 1.894427f, 1e-3f);
    EXPECT_NEAR(y[3], 3.683281f, 1e-3f);
}

TEST(BatchNorm, GoldenValues)
{
    // Channel 0: scale 1/sqrt(4) = 0.5, shift -0.5 -> [0, 0.5].
    // Channel 1: scale 0.5/sqrt(0.25) = 1, shift 1-2 = -1 -> [2, 3].
    Tensor x({1, 2, 2, 1}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
    Tensor gamma({2}, std::vector<float>{1.0f, 0.5f});
    Tensor beta({2}, std::vector<float>{0.0f, 1.0f});
    Tensor mean({2}, std::vector<float>{1.0f, 2.0f});
    Tensor var({2}, std::vector<float>{4.0f, 0.25f});
    Tensor y = batchNorm(x, gamma, beta, mean, var);
    EXPECT_NEAR(y[0], 0.0f, 1e-3f);
    EXPECT_NEAR(y[1], 0.5f, 1e-3f);
    EXPECT_NEAR(y[2], 2.0f, 1e-3f);
    EXPECT_NEAR(y[3], 3.0f, 1e-3f);
}

TEST(BatchNorm, FoldedStatistics)
{
    // With mean 2, var 4, gamma 3, beta 1: y = 3 * (x - 2) / 2 + 1.
    Tensor x({1, 1, 1, 2}, std::vector<float>{4.0f, 0.0f});
    Tensor gamma({1}, 3.0f);
    Tensor beta({1}, 1.0f);
    Tensor mean({1}, 2.0f);
    Tensor var({1}, 4.0f);
    Tensor y = batchNorm(x, gamma, beta, mean, var);
    EXPECT_NEAR(y[0], 4.0f, 1e-3f);
    EXPECT_NEAR(y[1], -2.0f, 1e-3f);
}

TEST(BatchNorm, PerChannel)
{
    Tensor x({1, 2, 1, 1}, std::vector<float>{1.0f, 1.0f});
    Tensor gamma({2}, std::vector<float>{1.0f, 10.0f});
    Tensor beta({2}, 0.0f);
    Tensor mean({2}, 0.0f);
    Tensor var({2}, 1.0f);
    Tensor y = batchNorm(x, gamma, beta, mean, var);
    EXPECT_NEAR(y[1] / y[0], 10.0f, 1e-3f);
}

TEST(Relu, ClampsNegative)
{
    Tensor x({4}, std::vector<float>{-2.0f, -0.5f, 0.0f, 3.0f});
    Tensor y = relu(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 0.0f);
    EXPECT_FLOAT_EQ(y[3], 3.0f);
}

TEST(Gelu, KnownValues)
{
    Tensor x({3}, std::vector<float>{0.0f, 1.0f, -10.0f});
    Tensor y = gelu(x);
    EXPECT_NEAR(y[0], 0.0f, 1e-6f);
    EXPECT_NEAR(y[1], 0.8412f, 1e-3f);
    EXPECT_NEAR(y[2], 0.0f, 1e-4f);
}

TEST(Add, Elementwise)
{
    Tensor a({2}, std::vector<float>{1.0f, 2.0f});
    Tensor b({2}, std::vector<float>{10.0f, 20.0f});
    Tensor y = add(a, b);
    EXPECT_FLOAT_EQ(y[0], 11.0f);
    EXPECT_FLOAT_EQ(y[1], 22.0f);
}

TEST(Add, ShapeMismatchPanics)
{
    Tensor a({2});
    Tensor b({3});
    EXPECT_DEATH(add(a, b), "shape mismatch");
}

TEST(ConcatChannels, StacksInOrder)
{
    Tensor a({1, 1, 2, 2}, 1.0f);
    Tensor b({1, 2, 2, 2}, 2.0f);
    Tensor y = concatChannels({a, b});
    EXPECT_EQ(y.shape(), (Shape{1, 3, 2, 2}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 2, 1, 1), 2.0f);
}

TEST(TokenLayout, RoundTrip)
{
    Rng rng(5);
    Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
    Tensor tokens = nchwToTokens(x);
    EXPECT_EQ(tokens.shape(), (Shape{2, 20, 3}));
    Tensor back = tokensToNchw(tokens, 4, 5);
    EXPECT_TRUE(back.allClose(x));
}

TEST(WindowPartition, RoundTrip)
{
    Rng rng(6);
    Tensor tokens = Tensor::randn({2, 6 * 4, 3}, rng);
    Tensor windows = windowPartition(tokens, 6, 4, 2);
    EXPECT_EQ(windows.shape(), (Shape{2 * 6, 4, 3}));
    Tensor back = windowReverse(windows, 6, 4, 2, 2);
    EXPECT_TRUE(back.allClose(tokens));
}

TEST(WindowPartition, WindowContentsContiguous)
{
    // A 4x4 grid with window 2: the first window holds grid positions
    // (0,0), (0,1), (1,0), (1,1).
    Tensor tokens({1, 16, 1});
    for (int64_t i = 0; i < 16; ++i)
        tokens[i] = static_cast<float>(i);
    Tensor windows = windowPartition(tokens, 4, 4, 2);
    EXPECT_FLOAT_EQ(windows.at3(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(windows.at3(0, 1, 0), 1.0f);
    EXPECT_FLOAT_EQ(windows.at3(0, 2, 0), 4.0f);
    EXPECT_FLOAT_EQ(windows.at3(0, 3, 0), 5.0f);
}

TEST(CyclicShift, RoundTrip)
{
    Rng rng(7);
    Tensor tokens = Tensor::randn({1, 5 * 4, 2}, rng);
    Tensor shifted = cyclicShift(tokens, 5, 4, 2, 1);
    Tensor back = cyclicShift(shifted, 5, 4, -2, -1);
    EXPECT_TRUE(back.allClose(tokens));
}

TEST(CyclicShift, MovesExpectedPixel)
{
    Tensor tokens({1, 4, 1}, std::vector<float>{1, 2, 3, 4}); // 2x2 grid
    Tensor shifted = cyclicShift(tokens, 2, 2, 1, 0);
    // Row 0 moves to row 1.
    EXPECT_FLOAT_EQ(shifted.at3(0, 2, 0), 1.0f);
    EXPECT_FLOAT_EQ(shifted.at3(0, 0, 0), 3.0f);
}

} // namespace
} // namespace vitdyn
