/** @file Tests of the reference executor and weight synthesis. */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/executor.hh"
#include "tensor/ops.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

/** input -> conv 3x3 -> relu, one output. */
Graph
tinyConvGraph(int64_t in_c = 3, int64_t out_c = 8)
{
    Graph g("tiny");
    int in = g.addInput("x", {1, in_c, 8, 8});
    Layer conv;
    conv.name = "conv1";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = in_c;
    conv.attrs.outChannels = out_c;
    conv.attrs.kernelH = conv.attrs.kernelW = 3;
    conv.attrs.padH = conv.attrs.padW = 1;
    conv.inputs = {in};
    int cid = g.addLayer(std::move(conv));
    Layer act;
    act.name = "relu1";
    act.kind = LayerKind::ReLU;
    act.inputs = {cid};
    g.addOutput(std::move(act));
    return g;
}

TEST(Executor, RunsAndShapesMatch)
{
    Graph g = tinyConvGraph();
    Executor exec(g, 1);
    Rng rng(2);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 8, 8}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 8, 8, 8}));
    // ReLU output is non-negative.
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_GE(out[i], 0.0f);
}

TEST(Executor, DeterministicAcrossInstances)
{
    Graph g = tinyConvGraph();
    Executor a(g, 7);
    Executor b(g, 7);
    Rng rng(3);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    EXPECT_TRUE(a.runSimple(x).allClose(b.runSimple(x), 0.0f));
}

TEST(Executor, SeedChangesWeights)
{
    Graph g = tinyConvGraph();
    Executor a(g, 7);
    Executor b(g, 8);
    Rng rng(3);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    EXPECT_FALSE(a.runSimple(x).allClose(b.runSimple(x), 1e-3f));
}

TEST(Executor, WeightsKeyedByName)
{
    // Two graphs with the same layer names produce identical outputs
    // even if built separately.
    Graph g1 = tinyConvGraph();
    Graph g2 = tinyConvGraph();
    Executor a(g1, 5);
    Executor b(g2, 5);
    Rng rng(4);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    EXPECT_TRUE(a.runSimple(x).allClose(b.runSimple(x), 0.0f));
}

TEST(Executor, MissingInputFatal)
{
    Graph g = tinyConvGraph();
    Executor exec(g, 1);
    std::map<std::string, Tensor> inputs; // empty
    EXPECT_EXIT(exec.run(inputs), testing::ExitedWithCode(1),
                "missing input");
}

TEST(Executor, WrongInputShapePanics)
{
    Graph g = tinyConvGraph();
    Executor exec(g, 1);
    Rng rng(5);
    EXPECT_DEATH(exec.runSimple(Tensor::randn({1, 3, 4, 4}, rng)),
                 "shape");
}

TEST(Executor, SlicedWeightsMatchFullPrefix)
{
    // The "same model weights" property: a narrower conv (with
    // registered full dims) computes exactly the leading output
    // channels of the full conv.
    Graph full = tinyConvGraph(3, 8);
    Graph pruned = tinyConvGraph(3, 8);
    pruned.layer(pruned.findLayer("conv1")).attrs.outChannels = 5;
    pruned.recomputeShapes();

    Executor fe(full, 11);
    Executor pe(pruned, 11);
    pe.setFullDims("conv1", 8, 3);

    Rng rng(6);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    Tensor fy = fe.runSimple(x);
    Tensor py = pe.runSimple(x);
    ASSERT_EQ(py.dim(1), 5);
    for (int64_t c = 0; c < 5; ++c)
        for (int64_t h = 0; h < 8; ++h)
            for (int64_t w = 0; w < 8; ++w)
                EXPECT_NEAR(py.at4(0, c, h, w), fy.at4(0, c, h, w),
                            1e-5f);
}

TEST(Executor, BypassedLayerPassesThrough)
{
    Graph g = tinyConvGraph(3, 3); // same in/out channels
    g.layer(g.findLayer("conv1")).bypassed = true;
    Executor exec(g, 1);
    Rng rng(7);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    Tensor y = exec.runSimple(x);
    // relu(identity(x)) == relu(x).
    EXPECT_TRUE(y.allClose(relu(x)));
}

TEST(Executor, AttentionPipelineMatchesFusedOp)
{
    // Decomposed attention (score -> softmax -> context) equals the
    // fused reference attention() for identity projections.
    const int64_t l = 6;
    const int64_t c = 8;
    Graph g("attn");
    int q = g.addInput("q", {1, l, c});
    int k = g.addInput("k", {1, l, c});
    int v = g.addInput("v", {1, l, c});

    Layer score;
    score.name = "score";
    score.kind = LayerKind::AttentionScore;
    score.attrs.inFeatures = c;
    score.attrs.numHeads = 2;
    score.inputs = {q, k};
    int sid = g.addLayer(std::move(score));

    Layer sm;
    sm.name = "softmax";
    sm.kind = LayerKind::Softmax;
    sm.inputs = {sid};
    int smid = g.addLayer(std::move(sm));

    Layer ctx;
    ctx.name = "context";
    ctx.kind = LayerKind::AttentionContext;
    ctx.attrs.inFeatures = l;
    ctx.attrs.numHeads = 2;
    ctx.inputs = {smid, v};
    int cid = g.addLayer(std::move(ctx));
    g.markOutput(cid);

    Executor exec(g, 1);
    Rng rng(8);
    std::map<std::string, Tensor> inputs;
    inputs["q"] = Tensor::randn({1, l, c}, rng);
    inputs["k"] = Tensor::randn({1, l, c}, rng);
    inputs["v"] = Tensor::randn({1, l, c}, rng);
    auto outs = exec.run(inputs);
    Tensor ref = attention(inputs["q"], inputs["k"], inputs["v"], 2);
    EXPECT_TRUE(outs.at("context").allClose(ref, 1e-4f));
}

TEST(Executor, MultiOutputGraph)
{
    Graph g("multi");
    int in = g.addInput("x", {1, 4});
    Layer a;
    a.name = "head_a";
    a.kind = LayerKind::Linear;
    a.attrs.inFeatures = 4;
    a.attrs.outFeatures = 2;
    a.inputs = {in};
    g.markOutput(g.addLayer(std::move(a)));
    Layer b;
    b.name = "head_b";
    b.kind = LayerKind::Linear;
    b.attrs.inFeatures = 4;
    b.attrs.outFeatures = 3;
    b.inputs = {in};
    g.markOutput(g.addLayer(std::move(b)));

    Executor exec(g, 1);
    Rng rng(9);
    std::map<std::string, Tensor> inputs;
    inputs["x"] = Tensor::randn({1, 4}, rng);
    auto outs = exec.run(inputs);
    EXPECT_EQ(outs.at("head_a").shape(), (Shape{1, 2}));
    EXPECT_EQ(outs.at("head_b").shape(), (Shape{1, 3}));
}

TEST(Executor, Int8ModeTracksFloat)
{
    // The accelerator's INT8 arithmetic on a whole graph: outputs
    // track the float path within quantization error.
    Graph g = tinyConvGraph();
    Executor fp(g, 21);
    Executor q8(g, 21);
    q8.setInt8(true);
    EXPECT_TRUE(q8.int8());

    Rng rng(22);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    Tensor fy = fp.runSimple(x);
    Tensor qy = q8.runSimple(x);
    ASSERT_EQ(fy.shape(), qy.shape());
    double err = 0.0;
    for (int64_t i = 0; i < fy.numel(); ++i)
        err += std::abs(fy[i] - qy[i]);
    err /= fy.numel();
    EXPECT_GT(err, 0.0);                     // it did quantize
    EXPECT_LT(err, 0.05 * fy.maxAbs());      // and stayed close
}

TEST(Executor, Int8ModeDeterministic)
{
    Graph g = tinyConvGraph();
    Executor a(g, 5);
    Executor b(g, 5);
    a.setInt8(true);
    b.setInt8(true);
    Rng rng(6);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    EXPECT_TRUE(a.runSimple(x).allClose(b.runSimple(x), 0.0f));
}

TEST(Executor, NarrowExecution)
{
    Graph g("narrow");
    int in = g.addInput("x", {1, 6, 2, 2});
    Layer n;
    n.name = "n";
    n.kind = LayerKind::Narrow;
    n.attrs.outChannels = 2;
    n.inputs = {in};
    g.markOutput(g.addLayer(std::move(n)));

    Executor exec(g, 1);
    Tensor x({1, 6, 2, 2});
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(i);
    Tensor y = exec.runSimple(x);
    EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 2}));
    for (int64_t i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(y[i], static_cast<float>(i));
}

} // namespace
} // namespace vitdyn
