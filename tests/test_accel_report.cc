/** @file Tests of the memory-hierarchy breakdown reporting. */

#include <gtest/gtest.h>

#include "accel/report.hh"
#include "accel/simulator.hh"
#include "models/segformer.hh"

namespace vitdyn
{
namespace
{

TEST(HierarchyReport, ComponentsSumToSimulatorEnergy)
{
    // The breakdown mirrors layerEnergyMj term by term, so its total
    // must equal the simulator's (PPU included).
    Graph g = buildSegformer(segformerB0Config());
    const AcceleratorConfig cfg = acceleratorStar();
    HierarchyBreakdown b = analyzeHierarchy(cfg, g);
    const double sim_energy = AcceleratorSim(cfg).energyMj(g);
    EXPECT_NEAR(b.totalMj(), sim_energy, 1e-6 * sim_energy);
}

TEST(HierarchyReport, AllComponentsPresent)
{
    Graph g = buildSegformer(segformerB0Config());
    HierarchyBreakdown b = analyzeHierarchy(acceleratorStar(), g);
    EXPECT_GT(b.macMj, 0.0);
    EXPECT_GT(b.idleLaneMj, 0.0); // DWConvs underutilize C0
    EXPECT_GT(b.rfMj, 0.0);
    EXPECT_GT(b.wmMj, 0.0);
    EXPECT_GT(b.amMj, 0.0);
    EXPECT_GT(b.gbMj, 0.0);
    EXPECT_GT(b.controlLeakageMj, 0.0);
    EXPECT_GT(b.ppuMj, 0.0);
    EXPECT_GT(b.rfAccesses, 0);
    EXPECT_GT(b.gbBytes, 0);
}

TEST(HierarchyReport, DramShareGrowsWithSpills)
{
    // The Cityscapes-size model streams its huge fuse input through
    // DRAM; its DRAM share must exceed the ADE model's.
    const AcceleratorConfig cfg = acceleratorStar();
    Graph ade = buildSegformer(segformerB2Config());
    Graph city = buildSegformer(segformerB2CityscapesConfig());
    HierarchyBreakdown ba = analyzeHierarchy(cfg, ade);
    HierarchyBreakdown bc = analyzeHierarchy(cfg, city);
    EXPECT_GT(bc.dramMj / bc.totalMj(), ba.dramMj / ba.totalMj());
}

TEST(HierarchyReport, LwsReuseVisibleInWmTraffic)
{
    Graph g = buildSegformer(segformerB0Config());
    AcceleratorConfig q8 = acceleratorStar();
    AcceleratorConfig q1 = acceleratorStar();
    q1.maxQ0 = 1;
    HierarchyBreakdown b8 = analyzeHierarchy(q8, g);
    HierarchyBreakdown b1 = analyzeHierarchy(q1, g);
    EXPECT_GT(b1.wmReadBytes, 4 * b8.wmReadBytes);
    EXPECT_GT(b1.wmMj, b8.wmMj);
}

TEST(HierarchyReport, TableRendersEveryComponent)
{
    Graph g = buildSegformer(segformerB0Config());
    HierarchyBreakdown b = analyzeHierarchy(acceleratorStar(), g);
    Table t = hierarchyTable("breakdown", b);
    const std::string s = t.toString();
    for (const char *label :
         {"MACs (useful)", "MAC lanes (idle)", "Weight SRAM",
          "Activation SRAM", "Global buffer", "DRAM",
          "Control + leakage", "Post-processing"})
        EXPECT_NE(s.find(label), std::string::npos) << label;
}

TEST(HierarchyReport, CrossPeTrafficOnlyWhenSplit)
{
    // A 1x1 conv small enough to need no C-split produces no cross-PE
    // partial sums.
    Graph g("nosplit");
    int in = g.addInput("x", {1, 32, 8, 8});
    Layer conv;
    conv.name = "c";
    conv.kind = LayerKind::Conv2d;
    conv.attrs.inChannels = 32;
    conv.attrs.outChannels = 32;
    conv.inputs = {in};
    g.markOutput(g.addLayer(std::move(conv)));
    HierarchyBreakdown b = analyzeHierarchy(acceleratorStar(), g);
    EXPECT_EQ(b.crossPeBytes, 0);
}

} // namespace
} // namespace vitdyn
