/** @file Tests of PVT + UPerNet and the generalization claim: the
 * paper's segmentation observations hold for any attention-dominant
 * backbone paired with the UPerNet head. */

#include <gtest/gtest.h>

#include "graph/executor.hh"
#include "graph/surgery.hh"
#include "models/pvt.hh"
#include "models/swin.hh"
#include "profile/flops_profile.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

TEST(Pvt, PublishedBackboneSize)
{
    // PVT-Small backbone: ~24.5 M params. With UPerNet's ~30 M head.
    Graph g = buildPvt(pvtSmallConfig());
    EXPECT_NEAR(g.totalParams() / 1e6, 55.0, 6.0);
}

TEST(Pvt, DecoderDominatesFullPipeline)
{
    // The generalization claim: with the UPerNet head, the decoder
    // dominates the pipeline FLOPs just as it does for Swin.
    Graph g = buildPvt(pvtSmallConfig());
    const double decoder =
        static_cast<double>(stageFlops(g, "decoder")) / g.totalFlops();
    EXPECT_GT(decoder, 0.75);

    const Layer &fb = g.layer(g.findLayer("fpn_bottleneck_Conv2D"));
    EXPECT_GT(static_cast<double>(fb.flops()) / g.totalFlops(), 0.5);
}

TEST(Pvt, BackboneIsAttentionDominant)
{
    // Unlike SegFormer (Mix-FFN DWConvs), PVT's encoder compute is
    // matmul/attention; its only convs are the patch embeddings and
    // SR reductions — a small share of encoder FLOPs.
    Graph g = buildPvt(pvtSmallConfig());
    int64_t enc_total = 0;
    int64_t enc_conv = 0;
    for (const Layer &l : g.layers()) {
        if (l.stage.rfind("encoder", 0) != 0)
            continue;
        enc_total += l.flops();
        if (l.category() == OpCategory::Conv)
            enc_conv += l.flops();
    }
    EXPECT_LT(static_cast<double>(enc_conv) / enc_total, 0.2);
}

TEST(Pvt, SharesUpernetHeadWithSwin)
{
    // The factored head gives PVT and Swin identical decoder FLOPs
    // wherever the stage channel counts match (they do at stage 3:
    // 512 for PVT-Small vs 768 for Swin-T, so compare the parts that
    // depend only on the head width).
    Graph pvt = buildPvt(pvtSmallConfig());
    Graph swin = buildSwin(swinTinyConfig());
    const Layer &pb = pvt.layer(pvt.findLayer("fpn_bottleneck_Conv2D"));
    const Layer &sb =
        swin.layer(swin.findLayer("fpn_bottleneck_Conv2D"));
    EXPECT_EQ(pb.attrs.inChannels, sb.attrs.inChannels);
    EXPECT_EQ(pb.attrs.outChannels, sb.attrs.outChannels);
    EXPECT_EQ(pb.flops(), sb.flops());
}

TEST(Pvt, TinySmallerThanSmall)
{
    Graph tiny = buildPvt(pvtTinyConfig());
    Graph small = buildPvt(pvtSmallConfig());
    EXPECT_LT(tiny.totalParams(), small.totalParams());
    EXPECT_LT(tiny.totalFlops(), small.totalFlops());
}

TEST(Pvt, FpnBottleneckPrunable)
{
    // The same surgery the paper applies to Swin works on PVT.
    Graph g = buildPvt(pvtSmallConfig());
    const int64_t before = g.totalMacs();
    const int64_t saved =
        pruneInputChannels(g, "fpn_bottleneck_Conv2D", 1024);
    EXPECT_GT(saved, 0);
    EXPECT_EQ(g.totalMacs(), before - saved);
    EXPECT_EQ(g.layer(g.findLayer("fpn_bottleneck_Conv2D"))
                  .attrs.inChannels,
              1024);
}

TEST(Pvt, SmallModelExecutes)
{
    PvtConfig cfg = pvtTinyConfig();
    cfg.imageH = cfg.imageW = 64;
    cfg.numClasses = 5;
    cfg.embedDims = {8, 16, 24, 32};
    cfg.numHeads = {1, 2, 3, 4};
    cfg.decoderChannels = 16;
    Graph g = buildPvt(cfg);
    Executor exec(g, 1);
    Rng rng(1);
    Tensor out = exec.runSimple(Tensor::randn({1, 3, 64, 64}, rng));
    EXPECT_EQ(out.shape(), (Shape{1, 5, 64, 64}));
}

} // namespace
} // namespace vitdyn
