/** @file Property tests over randomly generated graphs: normalize
 * idempotence, executor/shape-inference agreement, surgery safety,
 * linter soundness (clean graphs execute, corrupted graphs are
 * flagged), and a conv-vs-im2col cross-check of the reference
 * kernels. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "analysis/lint.hh"
#include "analysis/liveness.hh"
#include "graph/executor.hh"
#include "graph/passes/pass.hh"
#include "graph/surgery.hh"
#include "tensor/ops.hh"
#include "util/random.hh"

namespace vitdyn
{
namespace
{

/**
 * Build a random single-input NCHW pipeline: conv / bn / relu / gelu
 * / pool / interpolate stages with residual side edges where shapes
 * allow. Deterministic per seed.
 */
Graph
randomPipeline(uint64_t seed)
{
    Rng rng(seed);
    Graph g("fuzz_" + std::to_string(seed));
    const int64_t c0 = 4 + 2 * rng.uniformInt(0, 4);
    int cur = g.addInput("x", {1, c0, 16, 16});
    int64_t channels = c0;
    Shape cur_shape = {1, c0, 16, 16};

    const int stages = static_cast<int>(rng.uniformInt(3, 9));
    for (int i = 0; i < stages; ++i) {
        const int kind = static_cast<int>(rng.uniformInt(0, 4));
        Layer l;
        l.name = "layer" + std::to_string(i);
        l.stage = "stage" + std::to_string(i % 3);
        l.inputs = {cur};
        switch (kind) {
          case 0: { // conv
            l.kind = LayerKind::Conv2d;
            l.attrs.inChannels = channels;
            l.attrs.outChannels = 4 + 4 * rng.uniformInt(0, 5);
            l.attrs.kernelH = l.attrs.kernelW =
                rng.uniform() < 0.5 ? 1 : 3;
            l.attrs.padH = l.attrs.padW = l.attrs.kernelH / 2;
            channels = l.attrs.outChannels;
            break;
          }
          case 1:
            l.kind = LayerKind::BatchNorm;
            l.attrs.inChannels = channels;
            break;
          case 2:
            l.kind = rng.uniform() < 0.5 ? LayerKind::ReLU
                                         : LayerKind::GELU;
            break;
          case 3:
            l.kind = LayerKind::Interpolate;
            l.attrs.outH = cur_shape[2];
            l.attrs.outW = cur_shape[3];
            break;
          case 4:
            l.kind = LayerKind::AvgPool;
            l.attrs.outH = cur_shape[2];
            l.attrs.outW = cur_shape[3];
            l.attrs.kernelH = l.attrs.kernelW = 1;
            break;
        }
        cur = g.addLayer(std::move(l));
        cur_shape = g.layer(cur).outShape;
    }
    g.markOutput(cur);
    return g;
}

class GraphFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(GraphFuzz, NormalizeIsIdempotent)
{
    Graph g = randomPipeline(GetParam());
    g.normalize();
    const std::string once = g.toString();
    g.normalize();
    EXPECT_EQ(g.toString(), once);
}

TEST_P(GraphFuzz, ExecutorMatchesInferredShapes)
{
    Graph g = randomPipeline(GetParam());
    Executor exec(g, GetParam());
    Rng rng(GetParam() + 1);
    const Shape &in = g.layer(g.inputs()[0]).outShape;
    Tensor out = exec.runSimple(Tensor::randn(in, rng));
    EXPECT_EQ(out.shape(), g.layer(g.outputs()[0]).outShape);
    EXPECT_TRUE(std::isfinite(out.sum()));
}

TEST_P(GraphFuzz, FlopsNonNegativeAndStable)
{
    Graph g = randomPipeline(GetParam());
    const int64_t flops = g.totalFlops();
    EXPECT_GE(flops, 0);
    g.recomputeShapes();
    EXPECT_EQ(g.totalFlops(), flops);
}

TEST_P(GraphFuzz, PruneLastConvStillRuns)
{
    Graph g = randomPipeline(GetParam());
    // Find the last conv with >4 input channels; prune it.
    int target = -1;
    for (const Layer &l : g.layers())
        if (l.kind == LayerKind::Conv2d && l.attrs.inChannels > 4 &&
            l.attrs.groups == 1)
            target = l.id;
    if (target < 0)
        GTEST_SKIP() << "no prunable conv in this pipeline";

    const std::string name = g.layer(target).name;
    const int64_t keep = g.layer(target).attrs.inChannels / 2;
    const int64_t saved = pruneInputChannels(g, name, keep);
    EXPECT_GE(saved, 0);

    Executor exec(g, GetParam());
    Rng rng(GetParam() + 2);
    const Shape &in = g.layer(g.inputs()[0]).outShape;
    Tensor out = exec.runSimple(Tensor::randn(in, rng));
    EXPECT_EQ(out.shape(), g.layer(g.outputs()[0]).outShape);
}

/** True when any finding carries the given check id. */
bool
flagged(const LintReport &report, const std::string &check)
{
    const auto &ds = report.diagnostics();
    return std::any_of(ds.begin(), ds.end(), [&](const Diagnostic &d) {
        return d.check == check;
    });
}

/** Linter-clean property: every generated pipeline passes the full
 *  battery, and a clean verdict implies the executor builds and runs
 *  to the inferred output shape. */
TEST_P(GraphFuzz, LinterCleanImpliesExecutable)
{
    Graph g = randomPipeline(GetParam());
    LintReport report = lintGraph(g);
    ASSERT_TRUE(report.clean()) << report.toText();

    Executor exec(g, GetParam());
    Rng rng(GetParam() + 3);
    const Shape &in = g.layer(g.inputs()[0]).outShape;
    Tensor out = exec.runSimple(Tensor::randn(in, rng));
    EXPECT_EQ(out.shape(), g.layer(g.outputs()[0]).outShape);
}

/** Surgery preserves lint-cleanliness: pruned graphs still pass. */
TEST_P(GraphFuzz, LinterCleanAfterPrune)
{
    Graph g = randomPipeline(GetParam());
    int target = -1;
    for (const Layer &l : g.layers())
        if (l.kind == LayerKind::Conv2d && l.attrs.inChannels > 4 &&
            l.attrs.groups == 1)
            target = l.id;
    if (target < 0)
        GTEST_SKIP() << "no prunable conv in this pipeline";

    const std::string name = g.layer(target).name;
    pruneInputChannels(g, name, g.layer(target).attrs.inChannels / 2);
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.clean()) << report.toText();
}

/** A corrupted stored shape must be caught by the independent
 *  re-derivation (the executor would read this shape for buffers). */
TEST_P(GraphFuzz, CorruptedShapeIsFlagged)
{
    Graph g = randomPipeline(GetParam());
    Layer &victim = g.layer(g.outputs()[0]);
    victim.outShape[1] += 1;
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "shape.mismatch")) << report.toText();
}

/** A corrupted edge (dangling producer id) must be caught. */
TEST_P(GraphFuzz, CorruptedEdgeIsFlagged)
{
    Graph g = randomPipeline(GetParam());
    Layer &victim = g.layer(g.outputs()[0]);
    victim.inputs[0] = static_cast<int>(g.numLayers()) + 41;
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "graph.dangling-input"))
        << report.toText();
}

/** Corrupted conv attributes (zero stride) must be caught. */
TEST_P(GraphFuzz, CorruptedAttrsAreFlagged)
{
    Graph g = randomPipeline(GetParam());
    int conv = -1;
    for (const Layer &l : g.layers())
        if (l.kind == LayerKind::Conv2d)
            conv = l.id;
    if (conv < 0)
        GTEST_SKIP() << "no conv in this pipeline";

    g.layer(conv).attrs.strideH = 0;
    LintReport report = lintGraph(g);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(flagged(report, "attr.conv.stride")) << report.toText();
}

/** Pass-pipeline property: the standard pipeline leaves every
 *  generated graph lint-clean, conserves the flop/param totals, and
 *  the rewritten graph executes bit-identically to the original. */
TEST_P(GraphFuzz, PassPipelineLintCleanAndBitIdentical)
{
    Graph g = randomPipeline(GetParam());
    Graph rewritten = g;
    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> report = pipeline.run(rewritten);
    ASSERT_TRUE(report) << report.status().message();
    ASSERT_TRUE(lintGraph(rewritten).clean())
        << lintGraph(rewritten).toText();
    // Fusion conserves the accounted flops exactly; folding a
    // degenerate layer (e.g. a same-size Interpolate) deletes its
    // useless work, so the total can only go down, never up.
    EXPECT_LE(rewritten.totalFlops(), g.totalFlops());
    EXPECT_EQ(rewritten.totalParams(), g.totalParams());

    // Same weight seed on both sides: fusion must not change a bit.
    Executor ref(g, GetParam());
    Executor fused(rewritten, GetParam());
    Rng rng(GetParam() + 7);
    Tensor x = Tensor::randn(g.layer(g.inputs()[0]).outShape, rng);
    Tensor a = ref.runSimple(x);
    Tensor b = fused.runSimple(x);
    ASSERT_EQ(a.shape(), b.shape());
    // Bitwise equality, except +0.0/-0.0 compare equal: folding a
    // degenerate AvgPool/Interpolate skips arithmetic that
    // canonicalizes -0.0 (0.0 + -0.0 == +0.0) — the one sign bit a
    // value-preserving rewrite may legitimately change.
    for (int64_t i = 0; i < a.numel(); ++i) {
        const float va = a.data()[i];
        const float vb = b.data()[i];
        if (std::memcmp(&va, &vb, sizeof(float)) != 0)
            ASSERT_TRUE(va == 0.0f && vb == 0.0f)
                << "element " << i << ": " << va << " vs " << vb;
    }
}

/** Pass-pipeline property: a second run finds nothing to rewrite and
 *  leaves the graph byte-identical. */
TEST_P(GraphFuzz, PassPipelineIsIdempotent)
{
    Graph g = randomPipeline(GetParam());
    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> first = pipeline.run(g);
    ASSERT_TRUE(first) << first.status().message();
    const std::string once = g.toString();
    Result<PipelineReport> second = pipeline.run(g);
    ASSERT_TRUE(second) << second.status().message();
    EXPECT_EQ(second.value().totalRewrites(), 0);
    EXPECT_EQ(g.toString(), once);
}

/** Certification property: the executor's measured activation peak
 *  never exceeds the liveness analyzer's static bound — on the raw
 *  graph and on its pipeline-rewritten form (where in-place steals
 *  push the runtime peak below the no-steal model the bound uses). */
TEST_P(GraphFuzz, MeasuredPeakWithinCertifiedBound)
{
    Graph g = randomPipeline(GetParam());
    Rng rng(GetParam() + 3);
    Tensor x = Tensor::randn(g.layer(g.inputs()[0]).outShape, rng);

    Executor raw(g, GetParam());
    raw.runSimple(x);
    ASSERT_GT(raw.certifiedPeakBytes(), 0u);
    EXPECT_LE(raw.lastRunStats().peakLiveBytes,
              raw.certifiedPeakBytes());

    Graph rewritten = g;
    PassManager pipeline = PassManager::standardPipeline();
    ASSERT_TRUE(pipeline.run(rewritten));
    Executor fused(rewritten, GetParam());
    fused.runSimple(x);
    EXPECT_LE(fused.lastRunStats().peakLiveBytes,
              fused.certifiedPeakBytes());
}

/** Bound-invariance property: the standard pipeline only ever
 *  *removes* simultaneously-live bytes (fusion deletes intermediate
 *  activations; in-place annotation affects the planned arena, not
 *  liveness), so the analyzer's maxLiveBytes must not grow. The
 *  packed certified bound is kept out of this comparison on purpose:
 *  best-fit packing is a heuristic, and a smaller live set can
 *  fragment into a slightly larger arena — maxLiveBytes is the
 *  monotone quantity. The certified bound must still cover the live
 *  peak on both sides. */
TEST_P(GraphFuzz, PipelineNeverRaisesLiveBytes)
{
    Graph g = randomPipeline(GetParam());
    const analysis::LivenessInfo before = analysis::analyzeLiveness(g);
    EXPECT_GE(analysis::certifiedPeakBytes(g), before.maxLiveBytes);

    PassManager pipeline = PassManager::standardPipeline();
    Result<PipelineReport> report = pipeline.run(g);
    ASSERT_TRUE(report) << report.status().message();
    const analysis::LivenessInfo after = analysis::analyzeLiveness(g);
    EXPECT_LE(after.maxLiveBytes, before.maxLiveBytes);
    EXPECT_GE(analysis::certifiedPeakBytes(g), after.maxLiveBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         testing::Range<uint64_t>(1, 25));

/** conv2d must agree with an independent im2col + matmul oracle. */
class ConvOracle : public testing::TestWithParam<int> {};

TEST_P(ConvOracle, MatchesIm2colMatmul)
{
    Rng rng(1000 + GetParam());
    const int64_t c = 1 + rng.uniformInt(1, 6);
    const int64_t k = 1 + rng.uniformInt(1, 8);
    const int64_t h = 5 + rng.uniformInt(0, 6);
    const int64_t w = 5 + rng.uniformInt(0, 6);
    const int64_t r = rng.uniform() < 0.5 ? 1 : 3;
    const int64_t stride = 1 + rng.uniformInt(0, 1);
    const int64_t pad = r / 2;

    Tensor x = Tensor::randn({1, c, h, w}, rng);
    Tensor weight = Tensor::randn({k, c, r, r}, rng);
    Conv2dParams params;
    params.strideH = params.strideW = stride;
    params.padH = params.padW = pad;
    Tensor y = conv2d(x, weight, Tensor{}, params);

    // Oracle: im2col then a plain matmul.
    const int64_t p = convOutDim(h, r, stride, pad);
    const int64_t q = convOutDim(w, r, stride, pad);
    Tensor cols({p * q, c * r * r});
    for (int64_t op = 0; op < p; ++op)
        for (int64_t oq = 0; oq < q; ++oq)
            for (int64_t cc = 0; cc < c; ++cc)
                for (int64_t rr = 0; rr < r; ++rr)
                    for (int64_t ss = 0; ss < r; ++ss) {
                        const int64_t ih = op * stride - pad + rr;
                        const int64_t iw = oq * stride - pad + ss;
                        const float v =
                            (ih >= 0 && ih < h && iw >= 0 && iw < w)
                                ? x.at4(0, cc, ih, iw)
                                : 0.0f;
                        cols.at2(op * q + oq,
                                 (cc * r + rr) * r + ss) = v;
                    }
    Tensor wmat({c * r * r, k});
    for (int64_t kk = 0; kk < k; ++kk)
        for (int64_t i = 0; i < c * r * r; ++i)
            wmat.at2(i, kk) = weight[kk * c * r * r + i];
    Tensor oracle = matmul(cols, wmat); // (p*q, k)

    for (int64_t kk = 0; kk < k; ++kk)
        for (int64_t op = 0; op < p; ++op)
            for (int64_t oq = 0; oq < q; ++oq)
                ASSERT_NEAR(y.at4(0, kk, op, oq),
                            oracle.at2(op * q + oq, kk), 1e-3f)
                    << "k=" << kk << " p=" << op << " q=" << oq;
}

INSTANTIATE_TEST_SUITE_P(Random, ConvOracle, testing::Range(0, 16));

} // namespace
} // namespace vitdyn
